"""Metrics registry: named counters, gauges, log-scale histograms.

The registry supersedes the scattered per-component ``cache_stats()``
dicts with one namespace of named metrics:

* :class:`Counter` — monotonic, lock-protected increments (exact under
  concurrent batch workers; ``hits + misses == lookups`` holds to the
  unit).
* :class:`Gauge` — last-written value; *callback gauges*
  (:meth:`MetricsRegistry.register_gauge`) read a live component
  counter at snapshot time, so legacy counters (LRU hit/miss tallies,
  substrate build counts, sharing totals) surface as metrics without
  double bookkeeping.
* :class:`Histogram` — log-scale bucketed distribution with
  p50/p95/p99 estimates; bucket width ``10^(1/buckets_per_decade)``
  bounds the relative percentile error (~±4 % at the default 32
  buckets per decade).

Everything is dependency-free and thread-safe.  A process-wide default
registry is available via :func:`get_global_registry`; engines default
to a private registry so tests and concurrent engines stay isolated,
and accept ``metrics=get_global_registry()`` to aggregate.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_global_registry",
]


class Counter:
    """Monotonic counter with lock-protected increments."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written value (set/add), lock-protected."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Log-scale bucketed histogram with percentile estimates.

    A positive observation ``v`` lands in bucket
    ``floor(log10(v) * buckets_per_decade)``; each bucket spans a
    ``10^(1/bpd)`` ratio, so a percentile reported as the bucket's
    geometric midpoint is within half a bucket width of the true value
    (~±4 % relative at the default bpd=32).  Zero and negative
    observations are counted in a dedicated underflow bucket treated as
    the smallest value.  Exact ``count`` / ``sum`` / ``min`` / ``max``
    are tracked alongside.
    """

    __slots__ = (
        "name",
        "buckets_per_decade",
        "_buckets",
        "_underflow",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(self, name: str, buckets_per_decade: int = 32):
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.name = name
        self.buckets_per_decade = buckets_per_decade
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value > 0.0:
                idx = math.floor(math.log10(value) * self.buckets_per_decade)
                self._buckets[idx] = self._buckets.get(idx, 0) + 1
            else:
                self._underflow += 1

    # -- estimation ----------------------------------------------------
    def _bucket_mid(self, idx: int) -> float:
        return 10.0 ** ((idx + 0.5) / self.buckets_per_decade)

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            # Rank of the q-th observation (1-based, nearest-rank).
            rank = max(1, math.ceil(q * self._count))
            seen = self._underflow
            if rank <= seen:
                return max(0.0, self._min)
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if rank <= seen:
                    # Clamp to observed extremes: the top/bottom bucket
                    # midpoints can overshoot the true min/max.
                    return min(max(self._bucket_mid(idx), self._min), self._max)
            return self._max

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "min": round(lo, 6),
            "max": round(hi, 6),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
        }

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._underflow = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """One namespace of named metrics with a consistent snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauge_fns: Dict[str, Callable[[], Any]] = {}

    # -- get-or-create accessors ---------------------------------------
    def _check_free(self, name: str, own: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms, self._gauge_fns):
            if family is not own and name in family:
                raise ValueError(f"metric {name!r} already registered with another type")

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, buckets_per_decade: int = 32) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, buckets_per_decade)
            return metric

    def register_gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Callback gauge: *fn* is read at snapshot time.

        Re-registering replaces the callback (an engine re-wiring its
        caches keeps the same names).
        """
        with self._lock:
            self._check_free(name, self._gauge_fns)
            self._gauge_fns[name] = fn

    # -- convenience ---------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat name → value dict; histograms expand to summary dicts."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
            gauge_fns = list(self._gauge_fns.items())
        out: Dict[str, Any] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, fn in gauge_fns:
            try:
                out[name] = fn()
            except Exception:  # a dead callback must not poison the snapshot
                out[name] = None
        for name, histogram in histograms:
            out[name] = histogram.snapshot()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every owned metric; callback gauges stay registered."""
        with self._lock:
            metrics: List = list(self._counters.values())
            metrics += list(self._gauges.values())
            metrics += list(self._histograms.values())
        for metric in metrics:
            metric.reset()

    def __repr__(self) -> str:
        with self._lock:
            n = (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
                + len(self._gauge_fns)
            )
        return f"MetricsRegistry({n} metrics)"


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None


def get_global_registry() -> MetricsRegistry:
    """The process-wide registry (engines accept it via ``metrics=``)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL
