"""Profiling hooks: collect traces across a block of queries.

``with engine.profiled() as prof:`` turns tracing on for the block and
hands back a :class:`Profiler`; every query that completes inside the
block contributes its :class:`~repro.obs.trace.Trace`.  Afterwards
``prof.stage_totals()`` aggregates wall-clock per span name — the
per-stage cost breakdown SPARK-style evaluations report.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.obs.trace import Trace

__all__ = ["Profiler"]


class Profiler:
    """Accumulates finished traces; safe to feed from batch workers."""

    def __init__(self):
        self._lock = threading.Lock()
        self.traces: List[Trace] = []

    def record(self, trace: Trace) -> None:
        with self._lock:
            self.traces.append(trace)

    def __len__(self) -> int:
        with self._lock:
            return len(self.traces)

    def stage_totals(self) -> Dict[str, Dict[str, float]]:
        """Per span name: call count and total wall-clock milliseconds."""
        with self._lock:
            traces = list(self.traces)
        totals: Dict[str, Dict[str, float]] = {}
        for trace in traces:
            for sp in trace.spans():
                entry = totals.setdefault(sp.name, {"calls": 0, "total_ms": 0.0})
                entry["calls"] += 1
                entry["total_ms"] += sp.duration_ms
        for entry in totals.values():
            entry["total_ms"] = round(entry["total_ms"], 4)
        return totals

    def summary(self) -> str:
        """Printable per-stage table, heaviest stages first."""
        totals = self.stage_totals()
        lines = [f"{len(self)} traces"]
        for name, entry in sorted(
            totals.items(), key=lambda item: -item[1]["total_ms"]
        ):
            lines.append(
                f"  {name:<16} {entry['total_ms']:10.3f} ms over {entry['calls']} calls"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Profiler({len(self)} traces)"
