"""Per-query tracing: nested spans with durations, counters and tags.

One :class:`Tracer` lives for one query.  Call sites open spans as
context managers::

    with tracer.span("evaluate") as sp:
        ...
        sp.add("cns_executed", n)

and the tracer maintains the nesting stack, so the finished
:class:`Trace` is a tree mirroring the pipeline stages
(``parse -> clean -> substrate_build -> cn_enumerate -> plan ->
evaluate -> score -> topk``).  Interleaved stages that cannot be
bracketed by a ``with`` block (e.g. per-result scoring inside the
evaluation loop) are attached after the fact via :meth:`Tracer.record`
with an accumulated duration.

Tracers are *not* thread-safe: each query thread gets its own (the
batch executor runs one query per worker).  When tracing is disabled
the call sites hold ``tracer is None`` and the helper :func:`span`
yields the no-op :data:`NULL_SPAN`, so the disabled path costs one
``None`` check.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "Tracer", "NULL_SPAN", "span", "format_trace"]


class Span:
    """One timed stage: name, wall-clock, tags, work counters, children."""

    __slots__ = ("name", "start_s", "duration_ms", "tags", "counters", "children", "_tracer")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None):
        self.name = name
        self.start_s: float = 0.0
        self.duration_ms: float = 0.0
        self.tags: Dict[str, Any] = {}
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- annotation ----------------------------------------------------
    def tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def add(self, counter: str, n: int = 1) -> "Span":
        self.counters[counter] = self.counters.get(counter, 0) + n
        return self

    # -- context manager (pushes onto the owning tracer's stack) -------
    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self.start_s) * 1000.0
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.duration_ms:.3f} ms, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op span: accepts tags/counters, records nothing."""

    __slots__ = ()

    def tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add(self, counter: str, n: int = 1) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Singleton no-op span, handed out wherever tracing is disabled.
NULL_SPAN = _NullSpan()


def span(tracer: Optional["Tracer"], name: str):
    """Span context under *tracer*, or the no-op span when tracing is off."""
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name)


class Trace:
    """A finished span tree for one query."""

    __slots__ = ("root",)

    def __init__(self, root: Span):
        self.root = root

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def spans(self) -> Iterator[Span]:
        return self.root.walk()

    def span_names(self) -> List[str]:
        """Distinct span names, in first-visit (pre-order) order."""
        seen: Dict[str, None] = {}
        for sp in self.spans():
            seen.setdefault(sp.name, None)
        return list(seen)

    def find(self, name: str) -> Optional[Span]:
        for sp in self.spans():
            if sp.name == name:
                return sp
        return None

    def as_dict(self) -> Dict[str, Any]:
        return self.root.as_dict()

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=str, sort_keys=False)

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Chrome ``chrome://tracing`` / Perfetto complete events.

        Durations nest because child spans started after (and ended
        before) their parents; timestamps are relative to the root span
        so the export is stable across runs.
        """
        t0 = self.root.start_s
        events: List[Dict[str, Any]] = []
        for sp in self.spans():
            args: Dict[str, Any] = {}
            args.update({k: str(v) for k, v in sp.tags.items()})
            args.update(sp.counters)
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": round((sp.start_s - t0) * 1e6, 3),
                    "dur": round(sp.duration_ms * 1000.0, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        return events

    def __repr__(self) -> str:
        return f"Trace({self.root.name}, {self.duration_ms:.3f} ms, {sum(1 for _ in self.spans())} spans)"


class Tracer:
    """Builds one query's span tree; not shared across threads."""

    __slots__ = ("_root", "_stack")

    def __init__(self):
        self._root: Optional[Span] = None
        self._stack: List[Span] = []

    @property
    def current(self) -> Span:
        """The innermost open span (the root if none is open)."""
        if self._stack:
            return self._stack[-1]
        if self._root is not None:
            return self._root
        raise RuntimeError("no open span; open the root span first")

    def span(self, name: str) -> Span:
        """A new span, attached to the current span when entered."""
        return Span(name, tracer=self)

    def record(
        self,
        name: str,
        duration_s: float,
        counters: Optional[Dict[str, int]] = None,
    ) -> Span:
        """Attach an already-measured child span to the current span.

        For stages interleaved with others in one loop (per-result
        ``score`` / ``topk`` time inside ``evaluate``): the caller
        accumulates wall-clock itself and reports the total here.  Such
        spans overlap their siblings rather than partitioning them.
        """
        sp = Span(name)
        sp.start_s = time.perf_counter() - duration_s
        sp.duration_ms = duration_s * 1000.0
        if counters:
            sp.counters.update(counters)
        parent = self.current
        parent.children.append(sp)
        return sp

    # -- stack maintenance (driven by Span.__enter__/__exit__) ---------
    def _push(self, sp: Span) -> None:
        if self._root is None:
            self._root = sp
        elif self._stack:
            self._stack[-1].children.append(sp)
        else:
            self._root.children.append(sp)
        self._stack.append(sp)

    def _pop(self, sp: Span) -> None:
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()

    def finish(self) -> Trace:
        """The finished trace (root span must have exited)."""
        if self._root is None:
            raise RuntimeError("tracer finished without any span")
        return Trace(self._root)


def format_trace(trace: Trace, min_ms: float = 0.0) -> str:
    """Human-readable indented tree for the CLI ``--trace`` flag."""
    lines: List[str] = []

    def emit(sp: Span, depth: int) -> None:
        if depth > 0 and sp.duration_ms < min_ms:
            return
        parts = [f"{'  ' * depth}{sp.name:<16} {sp.duration_ms:9.3f} ms"]
        extras = [f"{k}={v}" for k, v in sp.counters.items()]
        extras += [f"{k}={v}" for k, v in sp.tags.items()]
        if extras:
            parts.append("  [" + ", ".join(extras) + "]")
        lines.append("".join(parts))
        for child in sp.children:
            emit(child, depth + 1)

    emit(trace.root, 0)
    return "\n".join(lines)
