"""Approximate deep memory accounting for storage and cache gauges.

:func:`deep_sizeof` walks an object graph with :func:`sys.getsizeof`,
visiting containers, ``__dict__``/``__slots__`` attributes and shared
objects once (by id), so the number it reports approximates the
resident footprint a structure *uniquely* pins.  It is the measurement
behind the ``storage.resident_bytes`` gauge, the ``substrates.bytes``
cache stat and the BENCH_storage memory-ratio gate.

The walk is iterative (no recursion limit), skips types that denote
shared infrastructure rather than data (modules, classes, functions),
and stops at any instance of the caller-supplied ``stop`` types — the
substrate cache, for example, stops at :class:`Database`/``Table`` so a
memoised tuple set is not charged for the whole row store it merely
references.
"""

from __future__ import annotations

import sys
from types import BuiltinFunctionType, FunctionType, MethodType, ModuleType
from typing import Iterable, Optional, Tuple

_SKIP_TYPES = (ModuleType, FunctionType, BuiltinFunctionType, MethodType, type)

#: Leaf types whose getsizeof is exact and which contain no pointers
#: worth following (str/bytes payloads are counted by getsizeof).
_ATOMIC_TYPES = (str, bytes, bytearray, memoryview, int, float, bool, complex)


def deep_sizeof(
    obj: object,
    stop: Tuple[type, ...] = (),
    seen: Optional[set] = None,
) -> int:
    """Total ``getsizeof`` over the graph reachable from *obj*.

    *stop* instances are charged their shallow size only (their
    contents belong to someone else); *seen* lets callers share one
    visited-set across several roots so common substructure is counted
    once.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        if isinstance(current, _SKIP_TYPES):
            continue
        ident = id(current)
        if ident in seen:
            continue
        seen.add(ident)
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic C objects
            continue
        if isinstance(current, _ATOMIC_TYPES) or (
            stop and isinstance(current, stop)
        ):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        else:
            attrs = getattr(current, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            slots = getattr(type(current), "__slots__", None)
            if slots:
                if isinstance(slots, str):
                    slots = (slots,)
                for name in slots:
                    try:
                        stack.append(getattr(current, name))
                    except AttributeError:
                        pass
    return total


def sizeof_each(objects: Iterable[object], stop: Tuple[type, ...] = ()) -> int:
    """Deep size of several roots with shared-substructure dedup."""
    seen: set = set()
    return sum(deep_sizeof(obj, stop=stop, seen=seen) for obj in objects)
