"""Observability: tracing spans, metrics registry, profiling hooks.

A zero-dependency subsystem threaded through every serving layer:

* :mod:`repro.obs.trace` — per-query :class:`Tracer` producing a nested
  span tree (``parse -> clean -> substrate_build -> cn_enumerate ->
  plan -> evaluate -> score -> topk``) with wall-clock durations, work
  counters and tags; attached to each result set as ``result.trace``
  and exportable as JSON or Chrome-trace format.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges and log-scale histograms (p50/p95/p99) that absorbs
  the scattered ``cache_stats()`` dicts into one snapshot.
* :mod:`repro.obs.profile` — a :class:`Profiler` collecting completed
  traces behind ``with engine.profiled():``, with per-stage totals.

Tracing is opt-in (``KeywordSearchEngine(trace=True)`` or
``search(..., trace=True)``); the disabled path costs a single ``None``
check per call site.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_global_registry,
)
from repro.obs.profile import Profiler
from repro.obs.trace import NULL_SPAN, Span, Trace, Tracer, format_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_global_registry",
    "Profiler",
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "format_trace",
    "span",
]
