"""Capped exponential backoff for transient failures."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from repro.resilience.errors import ReproError, classify_error

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff, deterministic by default.

    ``delay(1)`` is the sleep after the first failed attempt:
    ``base_delay * multiplier**(attempt-1)``, capped at ``max_delay``.
    With the default ``jitter=0.0`` there is no randomness — batches
    coalesce duplicates upstream, so synchronized retries are not a
    thundering-herd concern in-process, and determinism keeps the chaos
    tests reproducible.

    ``jitter`` is the opt-in for *cross-process* retry storms (multiple
    durable replicas replaying against one coordinator): each capped
    delay is stretched by a uniformly random factor in
    ``[1, 1 + jitter]``, desynchronising retriers while never shrinking
    the documented backoff floor.  Pass ``rng`` (a zero-arg callable
    returning floats in ``[0, 1)``) to :meth:`delay` for deterministic
    tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.0

    def delay(
        self, attempt: int, rng: Optional[Callable[[], float]] = None
    ) -> float:
        base = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter <= 0.0:
            return base
        draw = (rng or random.random)()
        return base * (1.0 + draw * self.jitter)


#: Default policy used by the batch executor.
DEFAULT_RETRY = RetryPolicy()


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[T, int]:
    """Run *fn*, retrying transient :class:`ReproError` failures.

    Returns ``(result, attempts)``.  Non-transient errors and the final
    failed attempt re-raise the original exception.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except Exception as exc:
            err = classify_error(exc)
            if attempt >= policy.max_attempts or not err.transient:
                raise
            sleep(policy.delay(attempt))
