"""Capped exponential backoff for transient failures."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

from repro.resilience.errors import ReproError, classify_error

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff.

    ``delay(1)`` is the sleep after the first failed attempt:
    ``base_delay * multiplier**(attempt-1)``, capped at ``max_delay``.
    No jitter — batches coalesce duplicates upstream, so synchronized
    retries are not a thundering-herd concern here, and determinism
    keeps the chaos tests reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    multiplier: float = 2.0

    def delay(self, attempt: int) -> float:
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))


#: Default policy used by the batch executor.
DEFAULT_RETRY = RetryPolicy()


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[T, int]:
    """Run *fn*, retrying transient :class:`ReproError` failures.

    Returns ``(result, attempts)``.  Non-transient errors and the final
    failed attempt re-raise the original exception.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except Exception as exc:
            err = classify_error(exc)
            if attempt >= policy.max_attempts or not err.transient:
                raise
            sleep(policy.delay(attempt))
