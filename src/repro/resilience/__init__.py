"""Resilient query execution: budgets, degradation, fault isolation.

The serving layer's safety net (see docs/ALGORITHMS.md, "Resilience &
degradation"):

* :mod:`~repro.resilience.budget` — per-query deadlines + work counters
  checked cooperatively inside the search algorithms' hot loops;
* :mod:`~repro.resilience.degradation` — the method ladder a budgeted
  query falls down instead of failing;
* :mod:`~repro.resilience.errors` — the structured exception taxonomy;
* :mod:`~repro.resilience.retry` — capped exponential backoff;
* :mod:`~repro.resilience.circuit` — circuit breaker over substrate
  builds;
* :mod:`~repro.resilience.failpoints` — deterministic fault injection
  for the chaos tests.
"""

from repro.resilience.budget import QueryBudget, make_budget
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.degradation import FALLBACKS, KNOWN_METHODS, fallback_chain
from repro.resilience.errors import (
    BudgetExceededError,
    CircuitOpenError,
    FaultInjectedError,
    QueryParseError,
    ReproError,
    SearchExecutionError,
    SubstrateBuildError,
    TransientError,
    classify_error,
)
from repro.resilience.failpoints import FAILPOINTS, FailpointRegistry, fail_point
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy, call_with_retry

__all__ = [
    "QueryBudget",
    "make_budget",
    "CircuitBreaker",
    "KNOWN_METHODS",
    "FALLBACKS",
    "fallback_chain",
    "ReproError",
    "QueryParseError",
    "BudgetExceededError",
    "SubstrateBuildError",
    "TransientError",
    "CircuitOpenError",
    "SearchExecutionError",
    "FaultInjectedError",
    "classify_error",
    "FAILPOINTS",
    "FailpointRegistry",
    "fail_point",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "call_with_retry",
]
