"""Per-query budgets: wall-clock deadline plus cooperative work counters.

Steiner-tree search and candidate-network enumeration are worst-case
exponential, so an unbounded query can stall a serving thread.  A
:class:`QueryBudget` bounds one query with a deadline and three work
counters (graph nodes expanded, CNs enumerated, candidates scored).
The search algorithms call the cheap ``tick_*`` methods inside their
hot loops; when a limit is crossed the tick raises
:class:`~repro.resilience.errors.BudgetExceededError`, which the
algorithm catches to return the best partial results found so far.
The budget object records ``exhausted`` / ``reason``, so the engine can
flag the result set as degraded without the algorithms having to thread
extra return values around.

Deadline checks cost a clock read, so they run on the first tick and
then every ``deadline_check_every`` ticks; counter checks are plain
integer compares and run on every tick.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.resilience.errors import BudgetExceededError


class QueryBudget:
    """Cooperative budget for one query (not shared across threads)."""

    __slots__ = (
        "timeout_ms",
        "max_nodes",
        "max_cns",
        "max_candidates",
        "nodes_expanded",
        "cns_enumerated",
        "candidates_scored",
        "exhausted",
        "reason",
        "_poisoned",
        "_clock",
        "_t0",
        "_deadline",
        "_ops",
        "_every",
    )

    def __init__(
        self,
        timeout_ms: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_cns: Optional[int] = None,
        max_candidates: Optional[int] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        deadline_check_every: int = 32,
    ):
        self.timeout_ms = timeout_ms
        self.max_nodes = max_nodes
        self.max_cns = max_cns
        self.max_candidates = max_candidates
        self._clock = clock
        self._t0 = clock()
        self._deadline = (
            None if timeout_ms is None else self._t0 + timeout_ms / 1000.0
        )
        self._every = max(1, deadline_check_every)
        self.nodes_expanded = 0
        self.cns_enumerated = 0
        self.candidates_scored = 0
        self.exhausted = False
        self.reason: Optional[str] = None
        self._poisoned = False
        self._ops = 0

    # ------------------------------------------------------------------
    # Hot-loop ticks
    # ------------------------------------------------------------------
    def _fail(self, reason: str) -> None:
        self.exhausted = True
        if self.reason is None:
            self.reason = reason
        raise BudgetExceededError(self.reason, budget=self)

    def _tick(self) -> None:
        if self.exhausted:
            self._fail(self.reason or "budget exhausted")
        if self._deadline is not None:
            self._ops += 1
            if self._ops == 1 or self._ops % self._every == 0:
                if self._clock() >= self._deadline:
                    self._fail(f"deadline exceeded ({self.timeout_ms:g} ms)")

    def tick_nodes(self, n: int = 1) -> None:
        """Charge *n* graph node expansions."""
        self.nodes_expanded += n
        if self.max_nodes is not None and self.nodes_expanded > self.max_nodes:
            self._fail(f"node expansion budget exhausted ({self.max_nodes})")
        self._tick()

    def tick_cns(self, n: int = 1) -> None:
        """Charge *n* candidate networks enumerated."""
        self.cns_enumerated += n
        if self.max_cns is not None and self.cns_enumerated > self.max_cns:
            self._fail(f"CN enumeration budget exhausted ({self.max_cns})")
        self._tick()

    def tick_candidates(self, n: int = 1) -> None:
        """Charge *n* candidate results scored."""
        self.candidates_scored += n
        if (
            self.max_candidates is not None
            and self.candidates_scored > self.max_candidates
        ):
            self._fail(f"candidate scoring budget exhausted ({self.max_candidates})")
        self._tick()

    def checkpoint(self) -> None:
        """Deadline-only check for loops with no natural work counter."""
        self._tick()

    # ------------------------------------------------------------------
    # Lifecycle & observability
    # ------------------------------------------------------------------
    def poison(self, reason: str = "cancelled") -> None:
        """Cancel the query from another thread: every next tick fails.

        The serving front end calls this when the client abandons a
        request (disconnect, shutdown drain): the worker thread running
        the query hits its next cooperative tick, raises
        :class:`BudgetExceededError`, and unwinds with whatever partial
        answer it has — which the server then discards.  Unlike plain
        exhaustion, poisoning survives :meth:`renew`, so a cancelled
        query cannot resurrect itself by descending the degradation
        ladder.  Safe to call from any thread (worst case the worker
        sees the flags one tick late).
        """
        self._poisoned = True
        self.exhausted = True
        if self.reason is None:
            self.reason = reason

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def renew(self) -> "QueryBudget":
        """Reset counters and the exhausted flag; the deadline persists.

        Used between rungs of the degradation ladder: each cheaper
        method gets fresh work counters but shares the wall clock.  A
        :meth:`poison`-cancelled budget stays exhausted: there is no
        rung cheap enough for a client that already hung up.
        """
        self.nodes_expanded = 0
        self.cns_enumerated = 0
        self.candidates_scored = 0
        if not self._poisoned:
            self.exhausted = False
            self.reason = None
        self._ops = 0
        return self

    def elapsed_ms(self) -> float:
        return (self._clock() - self._t0) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - self._clock()) * 1000.0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "timeout_ms": self.timeout_ms,
            "elapsed_ms": round(self.elapsed_ms(), 3),
            "nodes_expanded": self.nodes_expanded,
            "cns_enumerated": self.cns_enumerated,
            "candidates_scored": self.candidates_scored,
            "exhausted": self.exhausted,
            "poisoned": self._poisoned,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        state = f"exhausted: {self.reason}" if self.exhausted else "ok"
        return (
            f"QueryBudget(nodes={self.nodes_expanded}, cns={self.cns_enumerated}, "
            f"candidates={self.candidates_scored}, {state})"
        )


def make_budget(
    timeout_ms: Optional[float] = None,
    max_expansions: Optional[int] = None,
) -> Optional[QueryBudget]:
    """Budget from the two user-facing knobs, or None when unbounded.

    ``max_expansions`` bounds every work counter — it is a generic
    "units of work" cap for callers that don't care which loop burns it.
    """
    if timeout_ms is None and max_expansions is None:
        return None
    return QueryBudget(
        timeout_ms=timeout_ms,
        max_nodes=max_expansions,
        max_cns=max_expansions,
        max_candidates=max_expansions,
    )
