"""Structured exception taxonomy for the serving path.

Every failure the serving layer can produce is a :class:`ReproError`
subclass, so callers (the batch executor, the CLI, user code) can
classify outcomes without string matching:

* :class:`QueryParseError` — the request itself is malformed (bad ``k``,
  unknown method, unparseable query).  Subclasses :class:`ValueError`
  so pre-taxonomy callers that caught ``ValueError`` keep working.
* :class:`BudgetExceededError` — a query ran out of its
  :class:`~repro.resilience.budget.QueryBudget`.  Algorithms catch this
  internally and return partial results; it only escapes when there was
  nothing partial to return.
* :class:`SubstrateBuildError` — building a shared structure (inverted
  index, data graph, tuple sets, CNs, form pipeline) failed.  Marked
  transient: a retry may succeed, and repeated failures trip the batch
  executor's circuit breaker.
* :class:`TransientError` — explicitly retryable failures (fault
  injection, flaky I/O in future backends).
* :class:`CircuitOpenError` — fast-fail because the substrate circuit
  breaker is open; no work was attempted.
* :class:`SearchExecutionError` — wrapper for unexpected exceptions
  raised inside a worker, so one crashing query is reported instead of
  poisoning its batch.
* :class:`FaultInjectedError` — default exception raised by an
  activated failpoint (see :mod:`repro.resilience.failpoints`).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all structured serving-path errors."""

    #: Whether a retry (with backoff) is worthwhile.
    transient: bool = False

    def __init__(self, message: str, *, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.message = message
        self.cause = cause


class QueryParseError(ReproError, ValueError):
    """The request is malformed: bad k, unknown method, bad query text."""


class BudgetExceededError(ReproError):
    """A query exhausted its budget (deadline or work counters)."""

    def __init__(self, message: str, *, budget=None, cause=None):
        super().__init__(message, cause=cause)
        self.budget = budget


class SubstrateBuildError(ReproError):
    """A shared substrate (index, graph, tuple sets, ...) failed to build."""

    transient = True

    def __init__(self, site: str, cause: Optional[BaseException] = None):
        detail = f": {cause}" if cause is not None else ""
        super().__init__(f"substrate build failed at {site!r}{detail}", cause=cause)
        self.site = site


class TransientError(ReproError):
    """An explicitly retryable failure."""

    transient = True


class CircuitOpenError(ReproError):
    """Fast-fail: the substrate circuit breaker is open."""


class SearchExecutionError(ReproError):
    """Unexpected exception inside a search worker, wrapped for reporting."""


class FaultInjectedError(TransientError):
    """Default exception raised by an activated failpoint."""


def classify_error(exc: BaseException) -> ReproError:
    """Map an arbitrary exception onto the taxonomy.

    :class:`ReproError` instances pass through; ``ValueError`` becomes
    :class:`QueryParseError`; everything else is wrapped in
    :class:`SearchExecutionError` (non-transient).
    """
    if isinstance(exc, ReproError):
        return exc
    if isinstance(exc, ValueError):
        return QueryParseError(str(exc), cause=exc)
    return SearchExecutionError(f"{type(exc).__name__}: {exc}", cause=exc)
