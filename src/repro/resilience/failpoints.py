"""Deterministic fault-injection registry ("failpoints").

Named sites in the serving path call :func:`fail_point`; a site is a
no-op until a test activates it, after which it raises a chosen
exception and/or sleeps for a chosen delay — deterministically, with an
optional hit-count limit and an optional *key* filter so a single query
in a batch can be poisoned while its neighbours run clean.

Sites currently wired in (see docs/ALGORITHMS.md for the full table):

=============================   ==========================================
name                            fires when
=============================   ==========================================
``engine.index_build``          the inverted index is (re)built
``engine.data_graph_build``     the tuple-level data graph is (re)built
``engine.search``               a query executes (key = raw query text)
``engine.method``               a ladder rung dispatches (key = method)
``substrates.tuple_sets``       a tuple-set substrate builds (key = kws)
``substrates.candidate_networks``  a CN substrate builds (key = kws)
``substrates.keyword_groups``   a keyword group builds (key = keyword)
``substrates.form_pipeline``    the form pipeline builds
``cache.result_put``            a result is stored in the result LRU
``shard.execute``               a shard worker starts (key = shard id)
``wal.append``                  before a WAL record is written (key =
                                table); an armed raise leaves a torn
                                half-record on disk
``wal.fsync``                   after a WAL flush, before ``os.fsync``
``snapshot.commit``             after the manifest fsync, before the
                                rename that commits it (key = lsn)
=============================   ==========================================

The registry is intentionally tiny and lock-guarded; the inactive fast
path is a single dict emptiness check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.resilience.errors import FaultInjectedError

ExcFactory = Union[BaseException, Callable[[], BaseException], type, None]


class _Spec:
    __slots__ = ("exc", "delay", "times", "key", "hits")

    def __init__(self, exc: ExcFactory, delay: float, times: Optional[int], key):
        self.exc = exc
        self.delay = delay
        self.times = times
        self.key = key
        self.hits = 0


class FailpointRegistry:
    """Process-wide registry of activatable fault-injection sites."""

    def __init__(self):
        self._specs: Dict[str, _Spec] = {}
        self._lock = threading.Lock()
        self._hit_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Activation API (tests)
    # ------------------------------------------------------------------
    def activate(
        self,
        name: str,
        exc: ExcFactory = FaultInjectedError,
        delay: float = 0.0,
        times: Optional[int] = None,
        key=None,
    ) -> None:
        """Arm *name*: raise/sleep on the next ``times`` matching hits.

        ``exc`` may be an exception instance, an exception class, a
        zero-arg factory, or None (delay-only).  ``key`` restricts the
        failpoint to hits whose site passed an equal key — this is what
        lets one query of a batch be poisoned deterministically.
        """
        with self._lock:
            self._specs[name] = _Spec(exc, delay, times, key)

    def deactivate(self, name: str) -> None:
        with self._lock:
            self._specs.pop(name, None)

    def clear(self) -> None:
        """Disarm every failpoint (hit counters survive for inspection)."""
        with self._lock:
            self._specs.clear()

    def reset(self) -> None:
        """Disarm everything and zero the hit counters."""
        with self._lock:
            self._specs.clear()
            self._hit_counts.clear()

    @contextmanager
    def injected(self, name: str, **kwargs) -> Iterator[None]:
        """``with FAILPOINTS.injected("site", exc=..., times=1): ...``"""
        self.activate(name, **kwargs)
        try:
            yield
        finally:
            self.deactivate(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hits(self, name: str) -> int:
        """How many times *name* has actually fired."""
        with self._lock:
            return self._hit_counts.get(name, 0)

    def active(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._specs))

    # ------------------------------------------------------------------
    # Site API (production code)
    # ------------------------------------------------------------------
    def hit(self, name: str, key=None) -> None:
        """Called at an instrumented site; no-op unless armed."""
        if not self._specs:  # fast path: nothing armed anywhere
            return
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                return
            if spec.key is not None and spec.key != key:
                return
            if spec.times is not None:
                if spec.times <= 0:
                    return
                spec.times -= 1
                if spec.times == 0:
                    self._specs.pop(name, None)
            spec.hits += 1
            self._hit_counts[name] = self._hit_counts.get(name, 0) + 1
            delay, exc = spec.delay, spec.exc
        if delay > 0:
            time.sleep(delay)
        if exc is None:
            return
        if isinstance(exc, BaseException):
            raise exc
        if isinstance(exc, type) and issubclass(exc, BaseException):
            raise exc(f"fault injected at {name!r}")
        raise exc()


#: Process-wide singleton used by every instrumented site.
FAILPOINTS = FailpointRegistry()


def fail_point(name: str, key=None) -> None:
    """Module-level shorthand for ``FAILPOINTS.hit(name, key)``."""
    FAILPOINTS.hit(name, key)
