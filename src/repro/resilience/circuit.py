"""Circuit breaker over substrate builds.

A broken index (corrupt data, injected fault, resource exhaustion)
would otherwise make *every* request in every batch pay the full cost
of attempting — and failing — the same build.  The breaker counts
consecutive substrate-build failures; past a threshold it *opens* and
requests fail fast with
:class:`~repro.resilience.errors.CircuitOpenError` until a reset
timeout elapses, after which a single half-open probe is let through.
A successful probe closes the breaker; a failed one re-opens it.

The clock is injectable so tests can drive state transitions
deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed → open → half-open → closed state machine."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: "Callable[[str, str], None]" = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._state_since = clock()
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0  # lifetime count, for observability
        #: Called as ``on_transition(old_state, new_state)`` on every
        #: state change, outside the breaker lock (a slow or reentrant
        #: observer must not serialise the breaker).  The engine wires
        #: this to ``circuit.transitions.*`` counters.
        self.on_transition = on_transition
        self._pending_transitions: list = []

    def _note_transition(self, old: str, new: str) -> None:
        """Record a state change while holding the lock; emitted later."""
        if old != new:
            self._state_since = self._clock()
            self._pending_transitions.append((old, new))

    def _emit_transitions(self) -> None:
        """Flush recorded transitions to the observer, lock released."""
        if not self._pending_transitions:
            return
        with self._lock:
            pending, self._pending_transitions = self._pending_transitions, []
        callback = self.on_transition
        if callback is not None:
            for old, new in pending:
                callback(old, new)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            state = self._state_locked()
        self._emit_transitions()
        return state

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._note_transition(OPEN, HALF_OPEN)
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state exactly one probe is admitted; concurrent
        requests fail fast until the probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                allowed = True
            elif state == HALF_OPEN and not self._probing:
                self._probing = True
                allowed = True
            else:
                allowed = False
        self._emit_transitions()
        return allowed

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._note_transition(self._state, CLOSED)
            self._state = CLOSED
            self._probing = False
        self._emit_transitions()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            state = self._state_locked()
            if state == HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.opens += 1
                self._note_transition(self._state, OPEN)
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
        self._emit_transitions()

    def reset(self) -> None:
        """Force-close (operator override / tests)."""
        with self._lock:
            self._note_transition(self._state, CLOSED)
            self._state = CLOSED
            self._failures = 0
            self._probing = False
        self._emit_transitions()

    def time_in_state_s(self) -> float:
        """Seconds since the last state transition (live breaker health).

        Surfaced as a callback gauge so ``/metrics`` can distinguish a
        breaker that just opened from one stuck open for minutes —
        transition counters alone cannot tell those apart.
        """
        with self._lock:
            self._state_locked()
            since = self._state_since
        self._emit_transitions()
        return max(0.0, self._clock() - since)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            out = {
                "state": self._state_locked(),
                "failures": self._failures,
                "threshold": self.failure_threshold,
                "opens": self.opens,
                "time_in_state_s": max(0.0, self._clock() - self._state_since),
            }
        self._emit_transitions()
        return out

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, failures={self._failures})"
