"""The degradation ladder: which cheaper method replaces an exhausted one.

When a query exhausts its budget (or its method is structurally
infeasible, e.g. the exact Steiner DP with too many keyword groups),
the engine can descend a ladder of progressively cheaper methods
instead of failing:

    steiner ──┐
    ease ─────┤
    banks2 ───┼──> banks ──> index_only
    distinct_root ┘
    schema ─────────────────> index_only

``index_only`` is the terminal rung: score individual matching tuples
straight off the inverted index with no joins or graph traversal — it
always completes within any reasonable budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Every method the relational engine dispatches.
KNOWN_METHODS: Tuple[str, ...] = (
    "schema",
    "banks",
    "banks2",
    "steiner",
    "distinct_root",
    "ease",
    "index_only",
)

#: method -> the next-cheaper method (None terminates the ladder).
FALLBACKS: Dict[str, Optional[str]] = {
    "steiner": "banks",
    "ease": "banks",
    "banks2": "banks",
    "distinct_root": "banks",
    "banks": "index_only",
    "schema": "index_only",
    "index_only": None,
}


def fallback_chain(method: str) -> Tuple[str, ...]:
    """The full ladder starting at *method* (inclusive)."""
    chain = [method]
    current = method
    while FALLBACKS.get(current):
        current = FALLBACKS[current]
        chain.append(current)
    return tuple(chain)
