"""m-closest-keywords (mCK) queries (Zhang et al., ICDE 09).

Find one object per query keyword such that the group is as *tight* as
possible — we minimise the group diameter (max pairwise distance).

* ``mck_exhaustive`` — exact: enumerate all combinations (test oracle,
  small inputs only);
* ``mck_grid`` — exact with grid pruning: seed an upper bound with the
  best group anchored near each object of the rarest keyword, then
  enumerate combinations restricted to the ball around each anchor,
  skipping anchors whose neighbourhood cannot beat the bound.  Prunes
  the vast majority of combinations on clustered data.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spatial.objects import SpatialDatabase, SpatialObject

INF = float("inf")


def diameter(group: Sequence[SpatialObject]) -> float:
    """Max pairwise distance within a group (0 for singletons)."""
    best = 0.0
    for i in range(len(group)):
        for j in range(i + 1, len(group)):
            d = group[i].distance_to(group[j])
            if d > best:
                best = d
    return best


def mck_exhaustive(
    db: SpatialDatabase,
    keywords: Sequence[str],
    max_combinations: int = 2_000_000,
) -> Optional[Tuple[List[SpatialObject], float]]:
    """Exact mCK by full enumeration."""
    groups = [db.matching(k) for k in keywords]
    if any(not g for g in groups):
        return None
    total = 1
    for g in groups:
        total *= len(g)
    if total > max_combinations:
        raise ValueError(f"combination space too large ({total})")
    best_group: Optional[List[SpatialObject]] = None
    best_diameter = INF
    for combo in itertools.product(*groups):
        d = diameter(combo)
        if d < best_diameter:
            best_diameter = d
            best_group = list(combo)
    if best_group is None:
        return None
    return best_group, best_diameter


class MckStats:
    def __init__(self) -> None:
        self.combinations_checked = 0
        self.anchors_pruned = 0


def mck_grid(
    db: SpatialDatabase,
    keywords: Sequence[str],
    stats: Optional[MckStats] = None,
) -> Optional[Tuple[List[SpatialObject], float]]:
    """Exact mCK with anchor-ball pruning.

    Anchored at each object of the rarest keyword: any group containing
    the anchor with diameter < bound lies inside the bound-radius ball
    around it, so only ball-local matches are combined; anchors whose
    ball lacks some keyword (or is provably worse) are skipped.
    """
    stats = stats if stats is not None else MckStats()
    keywords = [k.lower() for k in keywords]
    groups = {k: db.matching(k) for k in keywords}
    if any(not g for g in groups.values()):
        return None
    rarest = min(keywords, key=lambda k: len(groups[k]))
    others = [k for k in keywords if k != rarest]

    # Initial bound: greedy nearest-match group from the first anchor.
    best_group: Optional[List[SpatialObject]] = None
    best_diameter = INF
    for anchor in groups[rarest]:
        group = [anchor]
        ok = True
        for keyword in others:
            nearest = min(
                groups[keyword],
                key=lambda o: o.distance_to(anchor),
            )
            group.append(nearest)
        d = diameter(group)
        if d < best_diameter:
            best_diameter = d
            best_group = group

    # Refinement: exact search inside each anchor's bound-radius ball.
    for anchor in groups[rarest]:
        radius = best_diameter
        ball = db.objects_near(anchor.x, anchor.y, radius)
        ball_ids = {o.oid for o in ball}
        local: List[List[SpatialObject]] = []
        feasible = True
        for keyword in others:
            members = [o for o in groups[keyword] if o.oid in ball_ids]
            if not members:
                feasible = False
                break
            local.append(members)
        if not feasible:
            stats.anchors_pruned += 1
            continue
        for combo in itertools.product(*local):
            stats.combinations_checked += 1
            group = [anchor, *combo]
            d = diameter(group)
            if d < best_diameter:
                best_diameter = d
                best_group = group
    if best_group is None:
        return None
    return best_group, best_diameter
