"""Spatial objects and a grid-indexed spatial database."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize


@dataclass(frozen=True)
class SpatialObject:
    """A point object with text content."""

    oid: int
    x: float
    y: float
    text: str

    def tokens(self) -> Set[str]:
        return set(tokenize(self.text))

    def distance_to(self, other: "SpatialObject") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class SpatialDatabase:
    """Objects with a uniform grid index and keyword posting lists."""

    def __init__(self, objects: Iterable[SpatialObject], cell_size: float = 1.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.objects: List[SpatialObject] = list(objects)
        self.cell_size = cell_size
        self._grid: Dict[Tuple[int, int], List[SpatialObject]] = {}
        self._postings: Dict[str, List[SpatialObject]] = {}
        for obj in self.objects:
            self._grid.setdefault(self._cell(obj.x, obj.y), []).append(obj)
            for token in obj.tokens():
                self._postings.setdefault(token, []).append(obj)

    def _cell(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)),
                int(math.floor(y / self.cell_size)))

    def __len__(self) -> int:
        return len(self.objects)

    def matching(self, keyword: str) -> List[SpatialObject]:
        return list(self._postings.get(keyword.lower(), ()))

    def objects_near(
        self, x: float, y: float, radius: float
    ) -> List[SpatialObject]:
        """Objects within *radius* of (x, y), via the grid."""
        span = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell(x, y)
        out = []
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                for obj in self._grid.get((cx + dx, cy + dy), ()):
                    if math.hypot(obj.x - x, obj.y - y) <= radius:
                        out.append(obj)
        return out

    def cells_with_keyword(self, keyword: str) -> Set[Tuple[int, int]]:
        return {self._cell(o.x, o.y) for o in self.matching(keyword)}


def generate_spatial_db(
    n_objects: int = 120,
    keywords: Sequence[str] = ("cafe", "museum", "park", "hotel", "garage"),
    extent: float = 20.0,
    seed: int = 43,
    cell_size: float = 2.0,
    planted_cluster: bool = True,
) -> SpatialDatabase:
    """Random points with 1-2 keywords each; optionally plants one tight
    cluster containing every keyword (the intended mCK answer)."""
    rng = random.Random(seed)
    objects = []
    oid = 0
    for _ in range(n_objects):
        terms = rng.sample(list(keywords), rng.randint(1, 2))
        objects.append(
            SpatialObject(
                oid,
                round(rng.uniform(0, extent), 3),
                round(rng.uniform(0, extent), 3),
                " ".join(terms),
            )
        )
        oid += 1
    if planted_cluster:
        cx, cy = extent * 0.3, extent * 0.7
        for i, keyword in enumerate(keywords):
            objects.append(
                SpatialObject(
                    oid, round(cx + i * 0.05, 3), round(cy + i * 0.04, 3), keyword
                )
            )
            oid += 1
    return SpatialDatabase(objects, cell_size=cell_size)
