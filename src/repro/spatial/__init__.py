"""Spatial keyword search (slide 168: Zhang et al., ICDE 09).

Objects carry a location and text; the *m-closest keywords* (mCK) query
asks for the most compact group of objects that collectively covers all
query keywords — "searching by document" over a map.
"""

from repro.spatial.objects import SpatialObject, SpatialDatabase, generate_spatial_db
from repro.spatial.mck import mck_exhaustive, mck_grid, diameter

__all__ = [
    "SpatialObject",
    "SpatialDatabase",
    "generate_spatial_db",
    "mck_exhaustive",
    "mck_grid",
    "diameter",
]
