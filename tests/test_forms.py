"""Tests for query forms, queriability and QUnits, including the
slide-40 participation-ratio arithmetic."""

import pytest

from repro.forms.generation import generate_forms, generate_skeletons
from repro.forms.matching import FormIndex, group_forms, rank_forms
from repro.forms.model import QueryForm, Skeleton
from repro.forms.queriability import (
    attribute_queriability,
    design_forms,
    entity_queriability,
    operator_affinities,
    participation_ratio,
    related_entity_queriability,
)
from repro.forms.qunits import materialize_qunits, search_qunits
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema
from repro.relational.schema_graph import SchemaGraph


@pytest.fixture(scope="module")
def slide40_db():
    """Slide 40: 6 authors, papers, editors with P(A->P)=5/6, P(P->A)=1,
    P(E->P)=1, P(P->E)=0.5."""
    schema = Schema(
        [
            TableSchema(
                "author",
                (Column("aid", "int"), Column("name", "str", text=True)),
                primary_key="aid",
            ),
            TableSchema(
                "editor",
                (Column("eid", "int"), Column("name", "str", text=True)),
                primary_key="eid",
            ),
            TableSchema(
                "paper",
                (
                    Column("pid", "int"),
                    Column("title", "str", text=True),
                    Column("eid", "int", nullable=True),
                ),
                primary_key="pid",
                foreign_keys=(ForeignKey("eid", "editor", "eid"),),
            ),
            TableSchema(
                "write",
                (
                    Column("wid", "int"),
                    Column("aid", "int"),
                    Column("pid", "int"),
                ),
                primary_key="wid",
                foreign_keys=(
                    ForeignKey("aid", "author", "aid"),
                    ForeignKey("pid", "paper", "pid"),
                ),
            ),
        ]
    )
    db = Database(schema)
    for aid in range(6):
        db.insert("author", aid=aid, name=f"author{aid}")
    for eid in range(2):
        db.insert("editor", eid=eid, name=f"editor{eid}")
    # 4 papers; papers 0,1 edited by editors 0,1; papers 2,3 unedited.
    for pid in range(4):
        db.insert(
            "paper",
            pid=pid,
            title=f"paper{pid}",
            eid=pid if pid < 2 else None,
        )
    # Authors 0..4 write papers (author 5 writes nothing): every paper
    # has at least one author.
    writes = [(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 0)]
    for wid, aid, pid in writes:
        db.insert("write", wid=wid, aid=aid, pid=pid)
    return db


class TestParticipation:
    def test_slide40_author_to_paper(self, slide40_db):
        assert participation_ratio(slide40_db, "author", "paper") == pytest.approx(5 / 6)

    def test_slide40_paper_to_author(self, slide40_db):
        assert participation_ratio(slide40_db, "paper", "author") == pytest.approx(1.0)

    def test_slide40_editor_to_paper(self, slide40_db):
        assert participation_ratio(slide40_db, "editor", "paper") == pytest.approx(1.0)

    def test_slide40_paper_to_editor(self, slide40_db):
        assert participation_ratio(slide40_db, "paper", "editor") == pytest.approx(0.5)

    def test_slide40_three_way_approximation_fails(self, slide40_db):
        """Slide 40: P(A->P)*P(P->E) = 5/6 * 0.5 != true P(A->P->E).

        Authors connected to an *edited* paper: authors 0, 1, 4
        (papers 0 and 1 are the edited ones) = 3/6 = 0.5, while the
        product approximation gives 5/12 — the slide's point that the
        two-step product misestimates the three-way ratio.
        """
        product = participation_ratio(
            slide40_db, "author", "paper"
        ) * participation_ratio(slide40_db, "paper", "editor")
        assert product == pytest.approx(5 / 12)
        assert product != pytest.approx(0.5)


class TestQueriability:
    def test_entity_scores_sum_to_one(self, slide40_db):
        graph = SchemaGraph(slide40_db.schema)
        scores = entity_queriability(slide40_db, graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v > 0 for v in scores.values())

    def test_related_queriability_author_paper_beats_editor_paper(self, slide40_db):
        """Papers are always connected to authors but only half to
        editors (slide 61), so (paper, author) > (paper, editor)."""
        graph = SchemaGraph(slide40_db.schema)
        scores = entity_queriability(slide40_db, graph)
        # Neutralise the entity-score factor to isolate relatedness.
        flat = {t: 1.0 for t in scores}
        qa = related_entity_queriability(slide40_db, graph, flat, "paper", "author")
        qe = related_entity_queriability(slide40_db, graph, flat, "paper", "editor")
        assert qa > qe

    def test_attribute_queriability_nullable(self, slide40_db):
        assert attribute_queriability(slide40_db, "paper", "title") == 1.0
        assert attribute_queriability(slide40_db, "paper", "eid") == 0.5

    def test_operator_affinities(self, slide40_db):
        aff_title = operator_affinities(slide40_db, "paper", "title")
        assert aff_title["projection"] == 1.0
        assert aff_title["aggregation"] == 0.0
        aff_eid = operator_affinities(slide40_db, "paper", "eid")
        assert aff_eid["aggregation"] == 1.0

    def test_design_forms_budget(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        forms = design_forms(tiny_db, graph, form_budget=4)
        assert 0 < len(forms) <= 4
        for form in forms:
            assert form.slots


class TestSkeletonsAndForms:
    def test_skeleton_enumeration_no_duplicates(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        skeletons = generate_skeletons(graph, max_size=3)
        codes = [s.canonical() for s in skeletons]
        assert len(codes) == len(set(codes))
        labels = {s.label() for s in skeletons}
        assert "author" in labels
        assert any("write" in l and "author" in l for l in labels)

    def test_skeleton_growth(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        small = generate_skeletons(graph, max_size=2)
        large = generate_skeletons(graph, max_size=3)
        assert len(large) > len(small)

    def test_generate_forms_slots(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        skeletons = generate_skeletons(graph, max_size=2)
        forms = generate_forms(tiny_db.schema, skeletons)
        assert forms
        for form in forms:
            assert form.slots
            for slot in form.slots:
                assert slot.table in form.skeleton.tables

    def test_query_classes(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        skeletons = generate_skeletons(graph, max_size=2)
        forms = generate_forms(tiny_db.schema, skeletons, with_query_classes=True)
        classes = {f.query_class for f in forms}
        assert classes == {"SELECT", "AGGR", "GROUP", "UNION-INTERSECT"}

    def test_form_evaluation(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        # author - write - paper skeleton
        skeletons = [
            s
            for s in generate_skeletons(graph, max_size=3)
            if sorted(s.tables) == ["author", "paper", "write"]
        ]
        assert skeletons
        form = generate_forms(tiny_db.schema, skeletons[:1])[0]
        results = form.evaluate(tiny_db, {"author.name": "jennifer widom"})
        assert results
        for joined in results:
            author = next(r for r in joined.rows if r.table.name == "author")
            assert author["name"] == "jennifer widom"


class TestFormMatching:
    @pytest.fixture(scope="class")
    def form_index(self, tiny_db, tiny_index):
        graph = SchemaGraph(tiny_db.schema)
        skeletons = generate_skeletons(graph, max_size=3)
        forms = generate_forms(tiny_db.schema, skeletons, with_query_classes=True)
        return FormIndex(forms, tiny_index)

    def test_expand_query_slide57(self, form_index):
        """'john, xml' expands with schema terms of matching attributes."""
        expansions = form_index.expand_query(["john", "xml"])
        assert ["john", "xml"] in expansions
        flat = {term for expansion in expansions for term in expansion}
        assert "author" in flat  # john matches author.name
        assert "paper" in flat  # xml matches paper.title

    def test_rank_forms_returns_relevant(self, form_index):
        ranked = rank_forms(form_index, ["john", "xml"], k=10)
        assert ranked
        top_tables = set(ranked[0][0].skeleton.tables)
        assert top_tables & {"author", "paper"}

    def test_scores_descending(self, form_index):
        ranked = rank_forms(form_index, ["john", "xml"], k=10)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_group_forms_two_levels(self, form_index):
        ranked = rank_forms(form_index, ["john", "xml"], k=20)
        groups = group_forms(ranked)
        assert groups
        for skeleton_label, by_class in groups.items():
            for query_class, forms in by_class.items():
                for form in forms:
                    assert form.skeleton.label() == skeleton_label
                    assert form.query_class == query_class


class TestQUnits:
    def test_materialize_director_qunits(self, movie_db):
        qunits = materialize_qunits(
            movie_db, "director", include_tables=["movie"], max_hops=1
        )
        assert len(qunits) == len(movie_db.table("director"))
        # Woody Allen's qunit contains his movies' text.
        woody = next(q for q in qunits if "woody" in q.text)
        assert any(m.table == "movie" for m in woody.members)

    def test_search_qunits(self, movie_db):
        qunits = materialize_qunits(
            movie_db, "director", include_tables=["movie"], max_hops=1
        )
        results = search_qunits(qunits, ["woody", "allen"], k=3)
        assert results
        assert "woody allen" in results[0][0].text

    def test_search_requires_all_keywords(self, movie_db):
        qunits = materialize_qunits(movie_db, "director", max_hops=1)
        assert search_qunits(qunits, ["woody", "zzznope"], k=3) == []
