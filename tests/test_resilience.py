"""Fault-injection tests for the resilient serving path.

Covers the taxonomy, budgets, the degradation ladder, the failpoint
registry, per-query fault isolation in batches, retries, and the
substrate circuit breaker.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.results import ResultSet
from repro.core.xml_engine import XmlSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.datasets.xml_corpora import slide_conf_tree
from repro.perf.batch import (
    BatchQuery,
    BatchSearchExecutor,
    as_batch_query,
)
from repro.resilience.budget import QueryBudget, make_budget
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.degradation import KNOWN_METHODS, fallback_chain
from repro.resilience.errors import (
    BudgetExceededError,
    CircuitOpenError,
    FaultInjectedError,
    QueryParseError,
    ReproError,
    SearchExecutionError,
    SubstrateBuildError,
    TransientError,
    classify_error,
)
from repro.resilience.failpoints import FAILPOINTS
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.xml_search.slca import slca_indexed_lookup_eager, slca_scan_eager


def result_signature(results):
    return [(r.score, r.network, tuple(r.tuple_ids())) for r in results]


@pytest.fixture()
def engine():
    return KeywordSearchEngine(tiny_bibliographic_db())


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(QueryParseError, ReproError)
        assert issubclass(QueryParseError, ValueError)  # back compat
        assert issubclass(BudgetExceededError, ReproError)
        assert issubclass(FaultInjectedError, TransientError)

    def test_transient_flags(self):
        assert SubstrateBuildError("index").transient
        assert TransientError("flaky").transient
        assert not QueryParseError("bad").transient
        assert not SearchExecutionError("boom").transient

    def test_classify_passthrough_and_wrapping(self):
        original = SubstrateBuildError("index")
        assert classify_error(original) is original
        wrapped = classify_error(ValueError("bad k"))
        assert isinstance(wrapped, QueryParseError)
        wrapped = classify_error(RuntimeError("boom"))
        assert isinstance(wrapped, SearchExecutionError)
        assert not wrapped.transient
        assert "boom" in str(wrapped)

    def test_substrate_error_carries_site(self):
        err = SubstrateBuildError("data_graph", RuntimeError("disk"))
        assert err.site == "data_graph"
        assert "data_graph" in str(err) and "disk" in str(err)


# ----------------------------------------------------------------------
# QueryBudget
# ----------------------------------------------------------------------
class TestQueryBudget:
    def test_counter_exhaustion(self):
        budget = QueryBudget(max_nodes=3)
        budget.tick_nodes()
        budget.tick_nodes(2)
        with pytest.raises(BudgetExceededError):
            budget.tick_nodes()
        assert budget.exhausted
        assert "node expansion" in budget.reason

    def test_counters_are_independent(self):
        budget = QueryBudget(max_cns=1)
        budget.tick_nodes(100)
        budget.tick_candidates(100)
        budget.tick_cns()
        with pytest.raises(BudgetExceededError):
            budget.tick_cns()

    def test_deadline_with_fake_clock(self):
        now = [0.0]
        budget = QueryBudget(
            timeout_ms=50, clock=lambda: now[0], deadline_check_every=1
        )
        budget.checkpoint()
        now[0] = 0.051
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()
        assert "deadline" in budget.reason

    def test_deadline_checked_every_n_ops(self):
        reads = [0]

        def clock():
            reads[0] += 1
            return 0.0

        budget = QueryBudget(timeout_ms=1000, clock=clock, deadline_check_every=32)
        reads[0] = 0
        for _ in range(64):
            budget.checkpoint()
        assert reads[0] <= 3  # op 1, 32, 64 — not 64 clock reads

    def test_exhausted_budget_keeps_raising(self):
        budget = QueryBudget(max_nodes=0)
        with pytest.raises(BudgetExceededError):
            budget.tick_nodes()
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()

    def test_renew_resets_counters_not_deadline(self):
        now = [0.0]
        budget = QueryBudget(
            timeout_ms=100, max_nodes=1, clock=lambda: now[0], deadline_check_every=1
        )
        with pytest.raises(BudgetExceededError):
            budget.tick_nodes(2)
        budget.renew()
        assert not budget.exhausted and budget.nodes_expanded == 0
        budget.tick_nodes()  # fine again
        now[0] = 1.0  # the original deadline still applies post-renew
        budget.renew()
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()

    def test_make_budget(self):
        assert make_budget(None, None) is None
        budget = make_budget(None, 7)
        assert budget.max_nodes == budget.max_cns == budget.max_candidates == 7
        assert make_budget(5.0, None).timeout_ms == 5.0

    def test_snapshot(self):
        budget = QueryBudget(max_nodes=10)
        budget.tick_nodes(4)
        snap = budget.snapshot()
        assert snap["nodes_expanded"] == 4
        assert snap["exhausted"] is False


# ----------------------------------------------------------------------
# Degraded search (acceptance: budget exhaustion never raises)
# ----------------------------------------------------------------------
class TestDegradedSearch:
    def test_unbudgeted_search_is_ok_resultset(self, engine):
        results = engine.search("john database", method="banks")
        assert isinstance(results, ResultSet)
        assert results.status == "ok"
        assert not results.degraded
        assert results.method == "banks"

    @pytest.mark.parametrize("method", list(KNOWN_METHODS))
    def test_tiny_budget_never_raises(self, engine, method):
        results = engine.search(
            "john database", method=method, max_expansions=1
        )
        assert isinstance(results, ResultSet)
        assert results.status in ("ok", "degraded")

    def test_zero_deadline_returns_degraded(self, engine):
        engine.search("john database")  # warm substrates
        results = engine.search("john database", timeout_ms=0)
        assert results.degraded
        assert "deadline" in (results.degraded_reason or "")

    def test_partial_results_flagged_degraded(self, engine):
        """Acceptance: some budget yields non-empty partial + degraded."""
        full = engine.search("john database", method="banks")
        assert len(full) > 1
        seen_partial = False
        for cap in range(1, 200):
            results = engine.search(
                "john database", method="banks", max_expansions=cap
            )
            if results.degraded and results:
                seen_partial = True
                assert len(results) <= len(full)
                break
        assert seen_partial, "no budget produced a non-empty degraded answer"

    def test_generous_budget_matches_unbudgeted(self, engine):
        full = engine.search("john database", method="banks")
        budgeted = engine.search(
            "john database", method="banks", max_expansions=10_000_000
        )
        assert not budgeted.degraded
        assert result_signature(budgeted) == result_signature(full)

    def test_budgeted_results_never_cached(self, engine):
        degraded = engine.search("john database", method="banks", max_expansions=1)
        assert degraded.degraded
        clean = engine.search("john database", method="banks")
        assert clean.status == "ok"
        assert result_signature(clean) == result_signature(
            engine.search("john database", method="banks", use_cache=False)
        )

    def test_unknown_method_is_parse_error(self, engine):
        with pytest.raises(QueryParseError):
            engine.search("john", method="quantum")
        with pytest.raises(ValueError):  # old callers still catch this
            engine.search("john", method="quantum")

    def test_index_only_method(self, engine):
        results = engine.search("john database", method="index_only")
        assert results
        assert all(r.network.startswith("index-only(") for r in results)
        assert all(len(r.joined.rows) == 1 for r in results)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_chains_terminate_at_index_only(self):
        for method in KNOWN_METHODS:
            chain = fallback_chain(method)
            assert chain[0] == method
            assert chain[-1] == "index_only"
            assert len(chain) == len(set(chain))

    def test_fallback_descends_on_structural_error(self, engine):
        # Poison the steiner rung itself; the ladder must land on banks.
        FAILPOINTS.activate(
            "engine.method", exc=ValueError("forced"), key="steiner"
        )
        results = engine.search("john database", method="steiner", fallback=True)
        assert results.degraded
        assert results.method == "banks"
        assert results.fallback_from == "steiner"
        assert results  # banks found answers
        assert result_signature(results) == result_signature(
            engine.search("john database", method="banks", k=10, use_cache=False)
        )

    def test_fallback_reaches_terminal_rung(self, engine):
        FAILPOINTS.activate("engine.method", exc=ValueError, key="banks")
        results = engine.search("john database", method="banks", fallback=True)
        assert results.method == "index_only"
        assert results.fallback_from == "banks"
        assert results

    def test_no_fallback_propagates_structural_error(self, engine):
        FAILPOINTS.activate(
            "engine.method", exc=ValueError("forced"), key="steiner"
        )
        with pytest.raises(ValueError):
            engine.search("john database", method="steiner", fallback=False)

    def test_fallback_without_budget_clean_path(self, engine):
        results = engine.search("john database", method="banks", fallback=True)
        assert results.status == "ok"
        assert results.method == "banks"
        assert results.fallback_from is None


# ----------------------------------------------------------------------
# Failpoint registry
# ----------------------------------------------------------------------
class TestFailpoints:
    def test_inactive_site_is_noop(self):
        FAILPOINTS.hit("nonexistent.site")  # must not raise

    def test_activate_and_deactivate(self):
        FAILPOINTS.activate("t.site")
        with pytest.raises(FaultInjectedError):
            FAILPOINTS.hit("t.site")
        FAILPOINTS.deactivate("t.site")
        FAILPOINTS.hit("t.site")
        assert FAILPOINTS.hits("t.site") == 1

    def test_times_limits_firings(self):
        FAILPOINTS.activate("t.site", exc=RuntimeError, times=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                FAILPOINTS.hit("t.site")
        FAILPOINTS.hit("t.site")  # disarmed after 2 firings
        assert FAILPOINTS.hits("t.site") == 2

    def test_key_filter(self):
        FAILPOINTS.activate("t.site", key="poison")
        FAILPOINTS.hit("t.site", key="clean")
        FAILPOINTS.hit("t.site")
        with pytest.raises(FaultInjectedError):
            FAILPOINTS.hit("t.site", key="poison")
        assert FAILPOINTS.hits("t.site") == 1

    def test_exception_instance_raised_as_is(self):
        sentinel = RuntimeError("exact instance")
        FAILPOINTS.activate("t.site", exc=sentinel)
        with pytest.raises(RuntimeError) as info:
            FAILPOINTS.hit("t.site")
        assert info.value is sentinel

    def test_delay_only(self):
        FAILPOINTS.activate("t.site", exc=None, delay=0.001)
        FAILPOINTS.hit("t.site")  # sleeps, no raise
        assert FAILPOINTS.hits("t.site") == 1

    def test_context_manager(self):
        with FAILPOINTS.injected("t.site", exc=RuntimeError):
            assert "t.site" in FAILPOINTS.active()
            with pytest.raises(RuntimeError):
                FAILPOINTS.hit("t.site")
        assert "t.site" not in FAILPOINTS.active()


# ----------------------------------------------------------------------
# Submission-time validation
# ----------------------------------------------------------------------
class TestBatchValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(QueryParseError):
            as_batch_query(("john", "schema", 0))
        with pytest.raises(QueryParseError):
            as_batch_query(BatchQuery("john", k=-3))

    def test_k_must_be_integer(self):
        with pytest.raises(QueryParseError):
            as_batch_query(("john", "schema", "many"))

    def test_unknown_method_rejected(self):
        with pytest.raises(QueryParseError):
            as_batch_query(("john", "quantum"))
        with pytest.raises(QueryParseError):
            as_batch_query("john", method="quantum")

    def test_uninterpretable_object_rejected(self):
        with pytest.raises(QueryParseError):
            as_batch_query(object())

    def test_valid_forms_still_coerce(self):
        q = as_batch_query(("john db", "banks", 3))
        assert q == BatchQuery("john db", k=3, method="banks")
        assert as_batch_query("john").method == "schema"

    def test_batch_rejects_before_dispatch(self, engine):
        executor = BatchSearchExecutor(engine, max_workers=2)
        with pytest.raises(QueryParseError):
            executor.run(["fine", ("bad", "schema", 0)])
        assert executor.queries_served == 0  # nothing was dispatched


# ----------------------------------------------------------------------
# Fault isolation in batches (acceptance criterion)
# ----------------------------------------------------------------------
class TestBatchFaultIsolation:
    QUERIES = ["john database", "widom xml", "poison pill", "levy logic"]

    def test_poisoned_query_is_isolated(self, engine):
        """One poisoned query errors; every neighbour still succeeds."""
        baseline = [
            engine.search(q, use_cache=False)
            for q in self.QUERIES
            if q != "poison pill"
        ]
        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="poison pill"
        )
        outcomes = engine.search_many(self.QUERIES, detailed=True)
        assert len(outcomes) == len(self.QUERIES)
        by_text = {o.query.text: o for o in outcomes}
        poisoned = by_text["poison pill"]
        assert poisoned.status == "error"
        assert isinstance(poisoned.error, SearchExecutionError)
        assert "boom" in str(poisoned.error)
        assert poisoned.results == []
        clean = [by_text[q] for q in self.QUERIES if q != "poison pill"]
        assert all(o.status == "ok" for o in clean)
        for o, expected in zip(clean, baseline):
            assert result_signature(o.results) == result_signature(expected)

    def test_default_run_returns_empty_errorset(self, engine):
        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="poison pill"
        )
        batches = engine.search_many(self.QUERIES)
        poisoned = batches[self.QUERIES.index("poison pill")]
        assert poisoned == []
        assert poisoned.status == "error"
        assert isinstance(poisoned.error, SearchExecutionError)
        for i, q in enumerate(self.QUERIES):
            if q != "poison pill":
                assert batches[i].status == "ok"

    def test_raise_on_error_restores_old_behavior(self, engine):
        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="poison pill"
        )
        with pytest.raises(SearchExecutionError):
            engine.search_many(self.QUERIES, raise_on_error=True)

    def test_batch_parity_without_faults(self, engine):
        outcomes = engine.search_many(self.QUERIES, detailed=True)
        assert all(o.status == "ok" for o in outcomes)
        for o in outcomes:
            expected = engine.search(o.query.text, use_cache=False)
            assert result_signature(o.results) == result_signature(expected)

    def test_budgeted_batch_flags_degraded(self, engine):
        engine.search("john database")  # warm
        outcomes = engine.search_many(
            ["john database"], method="banks", timeout_ms=0, detailed=True
        )
        assert outcomes[0].status == "degraded"
        assert outcomes[0].results.degraded

    def test_executor_stats_count_failures(self, engine):
        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="poison pill"
        )
        executor = BatchSearchExecutor(engine, max_workers=2)
        executor.run(self.QUERIES)
        stats = executor.stats()
        assert stats["queries_failed"] == 1
        assert stats["queries_served"] == len(self.QUERIES)


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_policy_delays_are_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.03, multiplier=2.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.03)  # capped
        assert policy.delay(10) == pytest.approx(0.03)

    def test_call_with_retry_transient(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("flaky")
            return "ok"

        result, n = call_with_retry(
            flaky, RetryPolicy(max_attempts=5), sleep=lambda s: None
        )
        assert result == "ok" and n == 3

    def test_call_with_retry_nontransient_raises_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError):
            call_with_retry(broken, sleep=lambda s: None)
        assert len(attempts) == 1

    def test_batch_retries_transient_fault_to_success(self, engine):
        """A fault that fires twice is retried through to a clean answer."""
        FAILPOINTS.activate(
            "engine.search",
            exc=TransientError("flaky"),
            key="john database",
            times=2,
        )
        sleeps = []
        executor = BatchSearchExecutor(
            engine,
            max_workers=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            sleep=sleeps.append,
        )
        outcomes = executor.run_outcomes(["john database"])
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 3
        assert outcomes[0].results
        assert len(sleeps) == 2

    def test_batch_gives_up_after_max_attempts(self, engine):
        FAILPOINTS.activate(
            "engine.search", exc=TransientError("flaky"), key="john database"
        )
        executor = BatchSearchExecutor(
            engine,
            max_workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            sleep=lambda s: None,
        )
        outcomes = executor.run_outcomes(["john database"])
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 2
        assert isinstance(outcomes[0].error, TransientError)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1

    def test_half_open_single_probe_then_close(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=10.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # everyone else fails fast
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_breaker_trips_on_repeated_substrate_failures(self):
        """Persistent index-build fault: retries, open circuit, fast-fail,
        then recovery once the fault clears."""
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        engine.circuit_breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=60.0
        )
        FAILPOINTS.activate("engine.index_build", exc=RuntimeError("disk gone"))
        executor = BatchSearchExecutor(
            engine,
            max_workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            sleep=lambda s: None,
        )
        outcomes = executor.run_outcomes(["john database", "widom xml", "levy"])
        # First queries burn build attempts until the breaker opens; the
        # remainder fail fast without touching the build.
        assert all(o.status == "error" for o in outcomes)
        assert any(isinstance(o.error, SubstrateBuildError) for o in outcomes)
        assert engine.circuit_breaker.state == "open"
        fired_before = FAILPOINTS.hits("engine.index_build")
        outcomes = executor.run_outcomes(["another query"])
        assert isinstance(outcomes[0].error, CircuitOpenError)
        assert outcomes[0].attempts == 0
        assert FAILPOINTS.hits("engine.index_build") == fired_before
        # Fault clears, operator resets: service recovers.
        FAILPOINTS.deactivate("engine.index_build")
        engine.circuit_breaker.reset()
        outcomes = executor.run_outcomes(["john database"])
        assert outcomes[0].status == "ok"
        assert outcomes[0].results

    def test_engine_owns_persistent_breaker(self, engine):
        assert isinstance(engine.circuit_breaker, CircuitBreaker)
        executor = BatchSearchExecutor(engine)
        assert executor.breaker is engine.circuit_breaker


# ----------------------------------------------------------------------
# XML budgets
# ----------------------------------------------------------------------
class TestXmlBudgets:
    def test_budgeted_slca_is_partial_and_sound(self):
        xml_engine = XmlSearchEngine(slide_conf_tree())
        full = xml_engine.search("keyword mark")
        assert full.status == "ok"
        capped = xml_engine.search("keyword mark", max_expansions=1)
        assert isinstance(capped, ResultSet)
        if capped.degraded:
            full_roots = {r.root for r in full}
            assert all(r.root in full_roots for r in capped)

    def test_algorithms_accept_budget_and_truncate(self):
        lists = [
            [(0, i) for i in range(20)],
            [(0, i, 0) for i in range(20)],
        ]
        full = slca_indexed_lookup_eager(lists)
        budget = QueryBudget(max_candidates=3)
        partial = slca_indexed_lookup_eager(lists, budget=budget)
        assert budget.exhausted
        assert set(partial) <= set(full)
        budget = QueryBudget(max_candidates=3)
        partial_scan = slca_scan_eager(lists, budget=budget)
        assert budget.exhausted
        assert set(partial_scan) <= set(slca_scan_eager(lists))

    def test_unknown_semantics_is_parse_error(self):
        xml_engine = XmlSearchEngine(slide_conf_tree())
        with pytest.raises(QueryParseError):
            xml_engine.search("keyword", semantics="nope")


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCliResilience:
    def test_search_with_budget_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "search",
                "john database",
                "--dataset",
                "tiny",
                "--method",
                "banks",
                "--max-expansions",
                "1",
                "--fallback",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded" in out or "no results" in out or "1." in out

    def test_search_timeout_zero_prints_degraded(self, capsys):
        from repro.cli import main

        code = main(
            [
                "search",
                "john database",
                "--dataset",
                "tiny",
                "--timeout-ms",
                "0",
            ]
        )
        assert code == 0
        assert "degraded" in capsys.readouterr().out

    def test_batch_reports_per_query_errors(self, capsys):
        from repro.cli import main

        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="john database"
        )
        code = main(
            [
                "batch",
                "john database",
                "widom xml",
                "--dataset",
                "tiny",
                "--workers",
                "1",
            ]
        )
        assert code == 1  # partial failure reported in the exit code
        out = capsys.readouterr().out
        assert "ERROR SearchExecutionError" in out
        assert "'widom xml'" in out  # the clean query still printed

    def test_index_only_is_a_cli_method(self, capsys):
        from repro.cli import main

        code = main(
            [
                "search",
                "john database",
                "--dataset",
                "tiny",
                "--method",
                "index_only",
            ]
        )
        assert code == 0
        assert "index-only(" in capsys.readouterr().out
