"""Chaos tests: concurrent mutation and injected faults vs. the caches.

These tests deliberately race batch serving against database mutation
(and widen race windows with delay failpoints) to prove the
version-checked caches never serve stale results.  Each test builds its
own database — the shared session fixtures must stay immutable.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.resilience.failpoints import FAILPOINTS


def result_signature(results):
    return [(r.score, r.network, tuple(r.tuple_ids())) for r in results]


QUERIES = ["john database", "widom xml", "levy logic", "stonebraker"]


class TestMutationDuringBatch:
    def test_inserts_visible_during_concurrent_batches(self):
        """Writers' own inserts are immediately visible while a background
        thread hammers the batch path against the same engine."""
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        stop = threading.Event()
        background_errors = []

        def hammer():
            while not stop.is_set():
                try:
                    engine.search_many(QUERIES, k=5, max_workers=4)
                except Exception as exc:  # pragma: no cover - fail loudly
                    background_errors.append(exc)
                    return

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            for i in range(5):
                name = f"chaosauthor{i} resilience"
                engine.db.insert(
                    "author", aid=1000 + i, name=name, affiliation=None
                )
                found = engine.search(f"chaosauthor{i}", k=5)
                assert found, f"insert {i} not visible to its own writer"
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert not background_errors

        # Steady state: the mutated engine serves exactly what a fresh
        # engine over the same data serves.
        fresh = KeywordSearchEngine(engine.db)
        for query in QUERIES + ["chaosauthor3"]:
            assert result_signature(engine.search(query, k=5)) == result_signature(
                fresh.search(query, k=5)
            )

    def test_delayed_result_put_does_not_pin_stale_entry(self):
        """A search delayed between compute and cache-publish must not
        leave a pre-mutation result pinned in the cache afterwards."""
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        query = "zweig database"
        assert engine.search(query, k=5) == []
        engine._result_cache.clear()

        # Widen the window: the next compute of `query` sleeps before
        # its result is published to the LRU.
        FAILPOINTS.activate(
            "cache.result_put", exc=None, delay=0.15, times=1, key=query
        )
        slow = threading.Thread(target=lambda: engine.search(query, k=5))
        slow.start()
        try:
            engine.db.insert(
                "author", aid=77, name="stefan zweig", affiliation="database lab"
            )
        finally:
            slow.join(timeout=30)
        assert not slow.is_alive()
        after = engine.search(query, k=5)
        assert after, "stale empty result served after mutation"

    def test_delayed_substrate_build_with_concurrent_insert(self):
        """Tuple-set build delayed mid-batch while a row lands: the final
        state must match a fresh engine (no stale substrate survives)."""
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        FAILPOINTS.activate(
            "substrates.tuple_sets", exc=None, delay=0.1, times=1
        )
        batch = threading.Thread(
            target=lambda: engine.search_many(QUERIES, k=5, max_workers=4)
        )
        batch.start()
        try:
            engine.db.insert(
                "author", aid=88, name="race condition", affiliation=None
            )
        finally:
            batch.join(timeout=30)
        assert not batch.is_alive()
        assert engine.search("condition", k=5), "insert invisible after batch"
        fresh = KeywordSearchEngine(engine.db)
        for query in QUERIES:
            assert result_signature(engine.search(query, k=5)) == result_signature(
                fresh.search(query, k=5)
            )

    def test_concurrent_batches_with_poisoned_query_and_mutation(self):
        """Fault isolation and invalidation compose: poisoned query plus
        mid-flight insert, and every clean query still serves fresh."""
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        FAILPOINTS.activate(
            "engine.search", exc=RuntimeError("boom"), key="poison pill"
        )
        queries = QUERIES + ["poison pill"]
        outcomes = engine.search_many(queries, k=5, detailed=True)
        engine.db.insert("author", aid=99, name="post insert", affiliation=None)
        outcomes = engine.search_many(queries, k=5, detailed=True)
        by_text = {o.query.text: o for o in outcomes}
        assert by_text["poison pill"].status == "error"
        fresh = KeywordSearchEngine(engine.db)
        for query in QUERIES:
            assert by_text[query].status == "ok"
            assert result_signature(by_text[query].results) == result_signature(
                fresh.search(query, k=5)
            )
