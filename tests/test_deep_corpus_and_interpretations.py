"""Deep-corpus stress tests, the slide-10 multiple-interpretation check,
and arrival-order invariance of the streaming mesh."""

import random

import pytest

from repro.datasets.xml_corpora import generate_deep_auctions_xml
from repro.index.inverted import InvertedIndex
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.mesh import OperatorMesh
from repro.schema_search.tuple_sets import TupleSets
from repro.xml_search.elca import elca_bruteforce, elca_candidates_verify
from repro.xml_search.slca import (
    slca_bruteforce,
    slca_indexed_lookup_eager,
    slca_multiway,
    slca_scan_eager,
)
from repro.xmltree.index import XmlKeywordIndex


class TestDeepCorpus:
    @pytest.fixture(scope="class")
    def deep(self):
        tree = generate_deep_auctions_xml(seed=47)
        return tree, XmlKeywordIndex(tree)

    def test_depth(self, deep):
        tree, _ = deep
        assert max(n.depth for n in tree.descendants(include_self=True)) >= 6

    def test_slca_algorithms_agree_at_depth(self, deep):
        tree, index = deep
        rng = random.Random(5)
        vocab = [v for v in index.vocabulary if index.list_size(v) >= 2]
        for _ in range(10):
            query = rng.sample(vocab, 2)
            lists = index.match_lists(query)
            expected = slca_bruteforce(lists)
            assert slca_indexed_lookup_eager(lists) == expected, query
            assert slca_scan_eager(lists) == expected, query
            assert slca_multiway(lists) == expected, query

    def test_elca_agrees_at_depth(self, deep):
        tree, index = deep
        for query in (["europe", "xml"], ["keyword", "john"], ["item", "name"]):
            lists = index.match_lists(query)
            if any(not l for l in lists):
                continue
            assert elca_candidates_verify(lists) == elca_bruteforce(tree, query)

    def test_slca_results_deeper_than_root(self, deep):
        """On a nested corpus, selective queries resolve below the root
        (the depth payoff of min-redundancy semantics)."""
        tree, index = deep
        rare = min(
            (v for v in index.vocabulary if index.list_size(v) >= 1),
            key=index.list_size,
        )
        lists = index.match_lists([rare, "name"])
        slcas = slca_indexed_lookup_eager(lists)
        assert slcas
        assert all(len(d) > 1 for d in slcas)


class TestSlide10Interpretations:
    def test_multiple_structural_interpretations(self, tiny_db, tiny_index):
        """Slide 10: 'John, SIGMOD' is structurally ambiguous — the CN
        space must offer several distinct join interpretations, not one."""
        ts = TupleSets(tiny_db, tiny_index, ["john", "sigmod"])
        cns = generate_candidate_networks(
            SchemaGraph(tiny_db.schema), ts, max_size=6
        )
        shapes = {cn.canonical_code() for cn in cns}
        assert len(shapes) >= 2
        # The canonical interpretation (author wrote a SIGMOD paper)
        # is among them:
        labels = {cn.label() for cn in cns}
        assert any(
            "author^{john}" in l and "conference^{sigmod}" in l for l in labels
        )
        # And at least one interpretation routes through citations
        # ("john's paper cited by a sigmod paper" style).
        assert any("cite" in l for l in labels)


class TestMeshOrderInvariance:
    def test_streamed_set_invariant_under_arrival_order(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        ts = TupleSets(tiny_db, tiny_index, query)
        cns = generate_candidate_networks(
            SchemaGraph(tiny_db.schema), ts, max_size=4
        )
        tids = list(tiny_db.all_tuple_ids())
        outcomes = []
        for seed in (1, 2, 3):
            rng = random.Random(seed)
            order = list(tids)
            rng.shuffle(order)
            mesh = OperatorMesh(cns, query)
            produced = set()
            for tid in order:
                for cn_index, rows in mesh.feed(tiny_db.row(tid)):
                    produced.add(
                        (cn_index, tuple((r.table.name, r.rowid) for r in rows))
                    )
            outcomes.append(produced)
        assert outcomes[0] == outcomes[1] == outcomes[2]
