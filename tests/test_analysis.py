"""Tests for ranking, snippets, differentiation, clouds, expansion,
facets, clustering, aggregation and text cube."""

import pytest

from repro.analysis.aggregation import Cell, cell_members, minimal_group_bys
from repro.analysis.clouds import data_cloud, frequent_cooccurring_terms
from repro.analysis.clustering import rank_clusters, result_score, xbridge_clusters
from repro.analysis.differentiation import (
    FeatureSet,
    comparison_table,
    degree_of_difference,
    select_features_greedy,
    select_features_random,
    select_features_top_frequency,
)
from repro.analysis.expansion import expand_query_for_clusters, f_measure
from repro.analysis.facets import (
    NavigationModel,
    build_navigation_tree,
    navigation_cost,
)
from repro.analysis.ranking import (
    VectorSpaceRanker,
    authority_scores,
    proximity_score,
)
from repro.analysis.snippets import (
    generate_snippet,
    snippet_covers_keywords,
    snippet_text,
)
from repro.analysis.textcube import STAR, TextCube, top_cells
from repro.datasets.events import TUTORIAL_EVENTS, tutorial_events_db
from repro.datasets.logs import QueryLogEntry, generate_query_log
from repro.datasets.xml_corpora import generate_bib_xml, slide_conf_tree
from repro.xml_search.slca import slca_indexed_lookup_eager
from repro.xmltree.index import XmlKeywordIndex


class TestVectorSpace:
    DOCS = {
        1: "xml keyword search on databases",
        2: "cloud computing platforms",
        3: "keyword search in the cloud",
    }

    def test_relevant_doc_ranks_first(self):
        ranker = VectorSpaceRanker(self.DOCS)
        ranked = ranker.rank(["xml", "keyword"])
        assert ranked[0][0] == 1

    def test_score_zero_for_no_overlap(self):
        ranker = VectorSpaceRanker(self.DOCS)
        assert ranker.score(2, ["xml"]) == 0.0

    def test_cosine_bounded(self):
        ranker = VectorSpaceRanker(self.DOCS)
        for doc_id in self.DOCS:
            s = ranker.score(doc_id, ["keyword", "search"])
            assert 0.0 <= s <= 1.0 + 1e-9

    def test_idf_favors_rare(self):
        ranker = VectorSpaceRanker(self.DOCS)
        assert ranker.idf("xml") > ranker.idf("keyword")


class TestProximityAndAuthority:
    def test_proximity_prefers_compact(self):
        close = proximity_score(3, [1, 1])
        spread = proximity_score(7, [3, 4])
        assert close > spread

    def test_proximity_validates(self):
        with pytest.raises(ValueError):
            proximity_score(0, [])

    def test_authority_sums_to_one(self, tiny_graph):
        scores = authority_scores(tiny_graph, iterations=20)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_authority_hub_gets_more(self, tiny_graph):
        scores = authority_scores(tiny_graph, iterations=20)
        degrees = {n: tiny_graph.degree(n) for n in tiny_graph.nodes}
        hub = max(degrees, key=degrees.get)
        leaf = min(degrees, key=degrees.get)
        assert scores[hub] > scores[leaf]


class TestSnippets:
    def test_snippet_covers_keywords(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        results = slca_indexed_lookup_eager(index.match_lists(["keyword", "mark"]))
        node = tree.node_at(results[0])
        items = generate_snippet(node, ["keyword", "mark"], max_items=4)
        assert snippet_covers_keywords(items, ["keyword", "mark"])

    def test_snippet_respects_budget(self):
        tree = slide_conf_tree()
        items = generate_snippet(tree, ["sigmod", "mark"], max_items=2)
        assert len(items) <= 2

    def test_snippet_text_readable(self):
        tree = slide_conf_tree()
        items = generate_snippet(tree, ["sigmod"], max_items=3)
        text = snippet_text(items)
        assert "sigmod" in text

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            generate_snippet(slide_conf_tree(), ["x"], max_items=0)


class TestDifferentiation:
    def _sets(self):
        # Two ICDE conferences (slide 151): shared and distinct features.
        r1 = FeatureSet.of(
            "icde2000",
            [
                ("conf:year", "2000"),
                ("paper:title", "olap"),
                ("paper:title", "mining"),
                ("paper:title", "data"),
                ("author:country", "usa"),
            ],
        )
        r2 = FeatureSet.of(
            "icde2010",
            [
                ("conf:year", "2010"),
                ("paper:title", "cloud"),
                ("paper:title", "scalability"),
                ("paper:title", "data"),
                ("author:country", "usa"),
            ],
        )
        return [r1, r2]

    def test_dod_symmetric_difference(self):
        a = {("t", "x"), ("t", "y")}
        b = {("t", "y"), ("t", "z")}
        assert degree_of_difference([a, b]) == 2

    def test_greedy_beats_top_frequency(self):
        sets = self._sets()
        select_features_top_frequency(sets, budget=2)
        base = degree_of_difference([fs.selected for fs in sets])
        sets2 = self._sets()
        select_features_greedy(sets2, budget=2)
        improved = degree_of_difference([fs.selected for fs in sets2])
        assert improved >= base
        assert improved > 0

    def test_greedy_selects_differentiating_features(self):
        sets = self._sets()
        select_features_greedy(sets, budget=2)
        table = comparison_table(sets)
        # Shared features ("data", "usa") should not dominate.
        chosen = set(table["icde2000"]) | set(table["icde2010"])
        assert ("conf:year", "2000") in chosen or ("conf:year", "2010") in chosen

    def test_budget_respected(self):
        sets = self._sets()
        select_features_greedy(sets, budget=1)
        for fs in sets:
            assert len(fs.selected) <= 1

    def test_random_baseline_deterministic(self):
        a = select_features_random(self._sets(), budget=2, seed=5)
        b = select_features_random(self._sets(), budget=2, seed=5)
        assert [fs.selected for fs in a] == [fs.selected for fs in b]


class TestCloudsAndExpansion:
    def test_data_cloud_excludes_query_terms(self, biblio_db, biblio_index):
        rows = [r for r in biblio_db.rows("paper")][:30]
        terms = data_cloud(biblio_db, rows, ["database"], k=5)
        assert terms
        assert all(t != "database" for t, _ in terms)

    def test_popularity_vs_relevance_modes(self, biblio_db):
        rows = [r for r in biblio_db.rows("paper")][:30]
        pop = data_cloud(biblio_db, rows, ["database"], k=5, mode="popularity")
        rel = data_cloud(
            biblio_db,
            rows,
            ["database"],
            k=5,
            mode="relevance",
            attribute_weights={"title": 3.0, "abstract": 0.5},
        )
        assert pop and rel

    def test_invalid_mode(self, biblio_db):
        with pytest.raises(ValueError):
            data_cloud(biblio_db, [], ["x"], mode="bogus")

    def test_cooccurring_terms_no_result_generation(self, biblio_index):
        terms = frequent_cooccurring_terms(biblio_index, ["database"], k=5)
        assert terms
        assert all(term != "database" for term, _ in terms)
        counts = [c for _, c in terms]
        assert counts == sorted(counts, reverse=True)

    def test_expansion_separates_clusters(self):
        java_lang = [
            "java language object oriented compiler",
            "java language virtual machine bytecode",
            "java language garbage collector",
        ]
        java_island = [
            "java island indonesia volcano",
            "java island provinces population",
        ]
        expanded = expand_query_for_clusters(
            ["java"], [java_lang, java_island], max_terms=2
        )
        (q1, f1), (q2, f2) = expanded
        assert "language" in q1
        assert "island" in q2
        assert f1 > 0.9 and f2 > 0.9

    def test_f_measure(self):
        assert f_measure(1.0, 1.0) == 1.0
        assert f_measure(0.0, 0.0) == 0.0


class TestFacets:
    @pytest.fixture(scope="class")
    def setup(self):
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        log = [
            QueryLogEntry(("pool",), (("state", "tx"),)),
            QueryLogEntry(("food",), (("state", "mi"),)),
            QueryLogEntry(("motorcycle",), (("state", "tx"),)),
            QueryLogEntry(("pool",), (("month", "dec"),)),
        ]
        return rows, NavigationModel(log)

    def test_model_probabilities(self, setup):
        _, model = setup
        assert model.p_expand("state") > model.p_expand("city")
        assert model.p_relevant("state", "tx") == pytest.approx(0.5)
        assert 0 <= model.p_show_results("state") <= 1

    def test_tree_partitions_rows(self, setup):
        rows, model = setup
        tree = build_navigation_tree(rows, ["state", "month", "city"], model)
        assert tree.facet is not None
        child_total = sum(c.size() for c in tree.children)
        assert child_total == len(rows)

    def test_greedy_not_worse_than_bad_order(self, setup):
        rows, model = setup
        greedy = build_navigation_tree(rows, ["state", "month", "city"], model)
        # 'city' first is a bad order: it has the most values and the
        # least log support.
        bad = build_navigation_tree(
            rows,
            ["state", "month", "city"],
            model,
            attribute_order=["city", "month", "state"],
        )
        assert navigation_cost(greedy, model) <= navigation_cost(bad, model) + 1e-9

    def test_navigation_cost_leaf_is_size(self, setup):
        rows, model = setup
        from repro.analysis.facets import FacetNode

        leaf = FacetNode(condition=None, rows=rows)
        assert navigation_cost(leaf, model) == len(rows)

    def test_partition_points(self):
        log = [
            QueryLogEntry(("x",), (("price", (100.0, 500.0)),)),
            QueryLogEntry(("y",), (("price", (100.0, 900.0)),)),
        ]
        model = NavigationModel(log)
        points = model.partition_points("price", k=2)
        assert 100.0 in points


class TestXBridgeClustering:
    @pytest.fixture(scope="class")
    def setup(self):
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5, with_journals=True)
        index = XmlKeywordIndex(tree)
        return tree, index

    def test_clusters_by_root_path(self, setup):
        tree, index = setup
        lists = index.match_lists(["xml"])
        results = slca_indexed_lookup_eager(lists)
        clusters = xbridge_clusters(tree, results)
        assert clusters
        for path, members in clusters.items():
            for member in members:
                assert tree.node_at(member).label_path() == path

    def test_conf_and_journal_papers_split(self, setup):
        tree, index = setup
        # keyword "keyword" is the tag of every title leaf
        results = [n.dewey for n in tree.find_by_tag("paper")]
        clusters = xbridge_clusters(tree, results)
        assert "/bib/conf/paper" in clusters
        assert "/bib/journal/paper" in clusters

    def test_rank_clusters_scores_descending(self, setup):
        tree, index = setup
        results = [n.dewey for n in tree.find_by_tag("paper")]
        clusters = xbridge_clusters(tree, results)
        ranked = rank_clusters(index, clusters, ["xml"])
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_result_score_positive_when_matching(self, setup):
        tree, index = setup
        lists = index.match_lists(["xml"])
        results = slca_indexed_lookup_eager(lists)
        if results:
            assert result_score(index, results[0], ["xml"]) > 0


class TestAggregation:
    def test_slide165_minimal_group_bys(self):
        """Slide 165: keywords {pool, motorcycle, american, food} over
        (month, state) yield 'dec tx' and '* mi'."""
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        cells = minimal_group_bys(
            rows, ["month", "state"], ["pool", "motorcycle", "american", "food"]
        )
        labels = {c.label() for c in cells}
        assert "dec tx" in labels
        assert "* mi" in labels

    def test_minimality_no_cover_specialization(self):
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        cells = minimal_group_bys(
            rows, ["month", "state"], ["pool", "motorcycle", "american", "food"]
        )
        for a in cells:
            for b in cells:
                if a != b:
                    assert not a.specialises(b)

    def test_cell_members(self):
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        cell = Cell(("month", "state"), ("dec", "tx"))
        members = cell_members(rows, cell)
        assert len(members) == 3
        assert all(r["state"] == "tx" for r in members)

    def test_no_cover_returns_empty(self):
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        assert minimal_group_bys(rows, ["month"], ["pool", "zzznope"]) == []


class TestTextCube:
    @pytest.fixture(scope="class")
    def cube(self):
        """Slide 166's laptop example."""
        rows = [
            ({"brand": "acer", "model": "aoa110", "cpu": "1.6ghz"},
             "lightweight powerful laptop"),
            ({"brand": "acer", "model": "aoa110", "cpu": "1.7ghz"},
             "powerful processor laptop"),
            ({"brand": "asus", "model": "eee", "cpu": "1.7ghz"},
             "large disk powerful laptop"),
            ({"brand": "asus", "model": "eee", "cpu": "1.2ghz"},
             "small cheap laptop"),
        ]
        return TextCube(["brand", "model", "cpu"], rows)

    def test_slide166_cells_found(self, cube):
        results = top_cells(cube, ["powerful", "laptop"], k=5, min_support=2)
        labels = [cell.label() for cell, _, _ in results]
        assert any("brand:acer" in l and "model:aoa110" in l for l in labels)
        assert any("cpu:1.7ghz" in l for l in labels)

    def test_min_support_respected(self, cube):
        results = top_cells(cube, ["powerful"], k=10, min_support=2)
        for cell, _, support in results:
            assert support >= 2

    def test_relevance_ordering(self, cube):
        results = top_cells(cube, ["powerful", "laptop"], k=10, min_support=1)
        scores = [s for _, s, _ in results]
        assert scores == sorted(scores, reverse=True)

    def test_all_keywords_required(self, cube):
        assert top_cells(cube, ["powerful", "zebra"], k=5, min_support=1) == []
