"""Unit tests for the index substrate (text, inverted, trie, q-gram)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.index.qgram import QGramIndex, edit_distance, qgrams
from repro.index.text import normalize_token, term_frequencies, tokenize
from repro.index.trie import Trie
from repro.relational.database import TupleId


class TestTokenize:
    def test_basic(self):
        assert tokenize("Keyword-based Search, 2011!") == [
            "keyword", "based", "search", "2011",
        ]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []

    def test_normalize(self):
        assert normalize_token("Hello-World") == "helloworld"

    def test_term_frequencies(self):
        assert term_frequencies("a b a") == {"a": 2, "b": 1}

    @given(st.text(max_size=50))
    @settings(max_examples=50)
    def test_tokens_are_normalized(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()


class TestInvertedIndex:
    def test_postings_and_matching(self, tiny_index):
        tuples = tiny_index.matching_tuples("xml")
        tables = {t.table for t in tuples}
        assert "paper" in tables
        assert all(isinstance(t, TupleId) for t in tuples)

    def test_case_insensitive(self, tiny_index):
        assert tiny_index.matching_tuples("XML") == tiny_index.matching_tuples("xml")

    def test_matching_tuples_in(self, tiny_index):
        papers = tiny_index.matching_tuples_in("xml", "paper")
        assert papers
        assert all(t.table == "paper" for t in papers)

    def test_tuples_matching_all(self, tiny_index):
        both = tiny_index.tuples_matching_all(["xml", "keyword"])
        assert TupleId("paper", 0) in both

    def test_unknown_token(self, tiny_index):
        assert tiny_index.matching_tuples("zzzzz") == []
        assert "zzzzz" not in tiny_index

    def test_document_frequency_and_idf(self, tiny_index):
        df_xml = tiny_index.document_frequency("xml")
        df_join = tiny_index.document_frequency("join")
        assert df_xml >= df_join >= 1
        assert tiny_index.idf("join") >= tiny_index.idf("xml")

    def test_term_frequency(self, tiny_index):
        tid = TupleId("paper", 0)  # "xml keyword search" + abstract
        assert tiny_index.term_frequency(tid, "xml") >= 1
        assert tiny_index.term_frequency(tid, "zebra") == 0

    def test_tokens_of(self, tiny_index):
        tokens = tiny_index.tokens_of(TupleId("paper", 0))
        assert {"xml", "keyword", "search"} <= tokens

    def test_document_count_counts_text_tables_only(self, tiny_db, tiny_index):
        expected = sum(
            len(t)
            for t in tiny_db.tables.values()
            if t.schema.text_columns
        )
        assert tiny_index.document_count == expected


class TestTrie:
    VOCAB = ["sig", "sigact", "sigmod", "sigweb", "srivastava", "search"]

    def test_prefix_range_contiguous(self):
        trie = Trie(self.VOCAB)
        rng = trie.prefix_range("sig")
        assert rng is not None
        lo, hi = rng
        matched = [trie.token(i) for i in range(lo, hi + 1)]
        assert matched == ["sig", "sigact", "sigmod", "sigweb"]

    def test_complete(self):
        trie = Trie(self.VOCAB)
        assert trie.complete("sigm") == ["sigmod"]
        assert trie.complete("x") == []
        assert trie.complete("s", limit=2) == ["search", "sig"]

    def test_membership_and_ids(self):
        trie = Trie(self.VOCAB)
        assert "sigmod" in trie
        assert trie.token(trie.token_id("sigmod")) == "sigmod"
        assert len(trie) == len(self.VOCAB)

    def test_fuzzy_prefix_exact_is_distance_zero(self):
        trie = Trie(self.VOCAB)
        results = dict(trie.fuzzy_prefix("sigmod", max_errors=1))
        assert results["sigmod"] == 0

    def test_fuzzy_prefix_tolerates_typo(self):
        trie = Trie(self.VOCAB)
        results = dict(trie.fuzzy_prefix("sogmod", max_errors=1))
        assert "sigmod" in results

    def test_fuzzy_prefix_respects_budget(self):
        trie = Trie(self.VOCAB)
        results = dict(trie.fuzzy_prefix("xxxxxx", max_errors=1))
        assert "sigmod" not in results

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=6), min_size=1))
    @settings(max_examples=50)
    def test_prefix_range_matches_linear_scan(self, vocab):
        trie = Trie(vocab)
        prefix = vocab[0][:2]
        expected = sorted({t for t in vocab if t.startswith(prefix)})
        assert trie.complete(prefix) == expected


class TestQGram:
    def test_edit_distance(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("", "abc") == 3

    def test_edit_distance_cutoff(self):
        assert edit_distance("aaaa", "bbbb", cutoff=2) == 3  # cutoff + 1

    def test_qgrams(self):
        assert qgrams("ab", 2) == ["#a", "ab", "b$"]

    def test_lookup_finds_close_tokens(self):
        index = QGramIndex(["database", "datbase", "databases", "query"])
        matches = dict(index.lookup("datbase", max_distance=1))
        assert matches["datbase"] == 0
        assert matches["database"] == 1
        assert "query" not in matches

    def test_candidates_superset_of_matches(self):
        vocab = ["ipad", "ipod", "apple", "nano", "att"]
        index = QGramIndex(vocab)
        verified = {t for t, _ in index.lookup("ipd", max_distance=1)}
        assert verified == {"ipad", "ipod"}
        assert verified <= set(index.candidates("ipd", max_distance=1))

    @given(
        st.lists(st.text(alphabet="abcd", min_size=1, max_size=8), min_size=1, max_size=30),
        st.text(alphabet="abcd", min_size=1, max_size=8),
    )
    @settings(max_examples=50)
    def test_lookup_agrees_with_bruteforce(self, vocab, query):
        index = QGramIndex(vocab)
        got = {t for t, _ in index.lookup(query, max_distance=1)}
        expected = {t for t in set(vocab) if edit_distance(query, t) <= 1}
        assert got == expected
