"""Shared fixtures: small deterministic databases and derived structures."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.datasets.events import tutorial_events_db
from repro.datasets.movies import generate_movie_db
from repro.datasets.products import generate_product_db
from repro.graph.data_graph import build_data_graph
from repro.index.inverted import InvertedIndex
from repro.resilience.failpoints import FAILPOINTS

try:  # CI installs pytest-timeout; the local image may not have it.
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """No test leaks armed failpoints into its neighbours."""
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


@pytest.fixture(autouse=True)
def _test_alarm():
    """Per-test wall-clock alarm when pytest-timeout is unavailable.

    A hung test (the failure mode this PR's budget/deadline machinery
    exists to prevent) should kill the test, not the CI job.  SIGALRM
    only fires on the main thread of Unix platforms; elsewhere this is
    a no-op and pytest-timeout (installed in CI) covers it.
    """
    seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))
    usable = (
        not _HAVE_PYTEST_TIMEOUT
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded {seconds}s wall-clock alarm")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def tiny_db():
    return tiny_bibliographic_db()


@pytest.fixture(scope="session")
def biblio_db():
    return generate_bibliographic_db(seed=7)


@pytest.fixture(scope="session")
def movie_db():
    return generate_movie_db(seed=11)


@pytest.fixture(scope="session")
def product_db():
    return generate_product_db(seed=13)


@pytest.fixture(scope="session")
def events_db():
    return tutorial_events_db()


@pytest.fixture(scope="session")
def tiny_index(tiny_db):
    return InvertedIndex(tiny_db)


@pytest.fixture(scope="session")
def biblio_index(biblio_db):
    return InvertedIndex(biblio_db)


@pytest.fixture(scope="session")
def tiny_graph(tiny_db):
    return build_data_graph(tiny_db)


@pytest.fixture(scope="session")
def biblio_graph(biblio_db):
    return build_data_graph(biblio_db)
