"""Shared fixtures: small deterministic databases and derived structures."""

from __future__ import annotations

import pytest

from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.datasets.events import tutorial_events_db
from repro.datasets.movies import generate_movie_db
from repro.datasets.products import generate_product_db
from repro.graph.data_graph import build_data_graph
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="session")
def tiny_db():
    return tiny_bibliographic_db()


@pytest.fixture(scope="session")
def biblio_db():
    return generate_bibliographic_db(seed=7)


@pytest.fixture(scope="session")
def movie_db():
    return generate_movie_db(seed=11)


@pytest.fixture(scope="session")
def product_db():
    return generate_product_db(seed=13)


@pytest.fixture(scope="session")
def events_db():
    return tutorial_events_db()


@pytest.fixture(scope="session")
def tiny_index(tiny_db):
    return InvertedIndex(tiny_db)


@pytest.fixture(scope="session")
def biblio_index(biblio_db):
    return InvertedIndex(biblio_db)


@pytest.fixture(scope="session")
def tiny_graph(tiny_db):
    return build_data_graph(tiny_db)


@pytest.fixture(scope="session")
def biblio_graph(biblio_db):
    return build_data_graph(biblio_db)
