"""Précis return-node selection tests, including slide 52 verbatim."""

import pytest

from repro.analysis.precis import PrecisGraph, slide52_graph


class TestSlide52:
    def test_sponsor_path_weight(self):
        graph = slide52_graph()
        paths = graph.best_path_weights("person")
        weight, path = paths["conference"]
        assert weight == pytest.approx(0.8 * 0.9)
        assert path == ("person", "review", "conference")

    def test_sponsor_dropped_at_threshold_04(self):
        """Slide 52: person->review->conference->sponsor has weight
        0.8*0.9*0.5 = 0.36 < 0.4, so sponsor is not returned."""
        graph = slide52_graph()
        selected = graph.select_attributes("person", min_weight=0.4)
        labels = {a.label() for a in selected}
        assert "conference.sponsor" not in labels
        assert "conference.year" in labels  # 0.72 >= 0.4
        assert "person.pname" in labels

    def test_sponsor_kept_at_lower_threshold(self):
        graph = slide52_graph()
        selected = graph.select_attributes("person", min_weight=0.3)
        labels = {a.label() for a in selected}
        assert "conference.sponsor" in labels
        sponsor = next(a for a in selected if a.attribute == "sponsor")
        assert sponsor.weight == pytest.approx(0.36)


class TestPrecisGeneral:
    def test_budget(self):
        graph = slide52_graph()
        selected = graph.select_attributes("person", max_attributes=2)
        assert len(selected) == 2
        weights = [a.weight for a in selected]
        assert weights == sorted(weights, reverse=True)

    def test_anchor_attributes_have_full_weight(self):
        graph = slide52_graph()
        selected = graph.select_attributes("person")
        pname = next(a for a in selected if a.attribute == "pname")
        assert pname.weight == 1.0
        assert pname.path == ("person",)

    def test_max_product_path_chosen(self):
        graph = PrecisGraph()
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("b", "c", 0.5)  # a-b-c = 0.25
        graph.add_edge("a", "c", 0.3)  # direct = 0.3 wins
        graph.add_attribute("c", "x", 1.0)
        paths = graph.best_path_weights("a")
        assert paths["c"][0] == pytest.approx(0.3)
        assert paths["c"][1] == ("a", "c")

    def test_unreachable_tables_excluded(self):
        graph = PrecisGraph()
        graph.add_edge("a", "b", 0.9)
        graph.add_attribute("z", "lonely", 1.0)
        selected = graph.select_attributes("a")
        assert all(a.table != "z" for a in selected)

    def test_invalid_weights(self):
        graph = PrecisGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", 1.5)
        with pytest.raises(ValueError):
            graph.add_attribute("a", "x", 0.0)
