"""CLI tests (invoking main() in-process with captured output)."""

import pytest

from repro.cli import main


class TestCli:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "biblio" in out
        assert "auctions" in out

    def test_search_tiny(self, capsys):
        assert main(["search", "widom xml", "--dataset", "tiny", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "[" in out and "author" in out

    def test_search_steiner(self, capsys):
        assert main(
            ["search", "widom xml", "--dataset", "tiny", "--method", "steiner"]
        ) == 0
        out = capsys.readouterr().out
        assert "steiner" in out

    def test_search_unknown_dataset(self, capsys):
        assert main(["search", "x", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_search_no_results(self, capsys):
        assert main(["search", "zzzz qqqq", "--dataset", "tiny"]) == 0
        assert "no results" in capsys.readouterr().out

    def test_batch(self, capsys):
        assert main(
            [
                "batch",
                "widom xml",
                "john sigmod",
                "widom xml",
                "--dataset",
                "tiny",
                "--workers",
                "4",
                "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("== 'widom xml'") == 2
        assert "result cache" in out
        assert "substrate builds" in out

    def test_batch_from_file(self, capsys, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("widom xml\n\njohn sigmod\n", encoding="utf-8")
        assert main(
            ["batch", "--file", str(queries), "--dataset", "tiny", "-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "== 'widom xml'" in out and "== 'john sigmod'" in out

    def test_batch_no_queries(self, capsys):
        assert main(["batch", "--dataset", "tiny"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_batch_missing_file(self, capsys):
        assert main(
            ["batch", "--file", "/nonexistent/queries.txt", "--dataset", "tiny"]
        ) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_suggest(self, capsys):
        assert main(["suggest", "sig", "--dataset", "tiny"]) == 0
        assert "sigmod" in capsys.readouterr().out

    def test_xml_search(self, capsys):
        assert main(
            ["xml", "keyword mark", "--corpus", "conf-slide", "--snippets"]
        ) == 0
        out = capsys.readouterr().out
        assert "/conf/paper" in out
        assert "snippet" in out

    def test_xml_elca(self, capsys):
        assert main(
            ["xml", "mark sigmod", "--corpus", "conf-slide", "--semantics", "elca"]
        ) == 0
        assert "[" in capsys.readouterr().out

    def test_facets(self, capsys):
        assert main(["facets", "--dataset", "events-slide", "--table", "events"]) == 0
        out = capsys.readouterr().out
        assert "navigation cost" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
