"""Tests for spatial mCK search, database selection and cross-database
(Kite-style) search — the slide-168 'other KWS systems'."""

import pytest

from repro.datasets.bibliographic import bibliographic_schema
from repro.distributed.kite import (
    CrossDatabase,
    InterDbLink,
    cross_search,
    spans_databases,
)
from repro.distributed.selection import DatabaseSummary, rank_databases
from repro.relational.database import Database
from repro.spatial.mck import MckStats, diameter, mck_exhaustive, mck_grid
from repro.spatial.objects import SpatialDatabase, SpatialObject, generate_spatial_db


class TestSpatialObjects:
    def test_grid_radius_query(self):
        objs = [SpatialObject(i, float(i), 0.0, "x") for i in range(10)]
        db = SpatialDatabase(objs, cell_size=2.0)
        near = db.objects_near(0.0, 0.0, 3.0)
        assert {o.oid for o in near} == {0, 1, 2, 3}

    def test_postings(self):
        db = generate_spatial_db(seed=43)
        assert db.matching("cafe")
        assert db.matching("zebra") == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialDatabase([], cell_size=0)

    def test_diameter(self):
        a = SpatialObject(0, 0, 0, "x")
        b = SpatialObject(1, 3, 4, "y")
        assert diameter([a, b]) == pytest.approx(5.0)
        assert diameter([a]) == 0.0


class TestMck:
    def test_grid_matches_exhaustive(self):
        db = generate_spatial_db(n_objects=40, seed=43)
        keywords = ["cafe", "museum", "park"]
        exact = mck_exhaustive(db, keywords)
        fast = mck_grid(db, keywords)
        assert exact is not None and fast is not None
        assert fast[1] == pytest.approx(exact[1])

    def test_finds_planted_cluster(self):
        db = generate_spatial_db(n_objects=100, seed=43, planted_cluster=True)
        keywords = ["cafe", "museum", "park", "hotel", "garage"]
        result = mck_grid(db, keywords)
        assert result is not None
        group, d = result
        # The planted cluster has diameter < 0.25.
        assert d < 0.5
        assert len(group) == len(keywords)

    def test_group_covers_all_keywords(self):
        db = generate_spatial_db(n_objects=60, seed=7)
        keywords = ["cafe", "park"]
        result = mck_grid(db, keywords)
        assert result is not None
        group, _ = result
        covered = set()
        for obj in group:
            covered |= obj.tokens()
        assert set(keywords) <= covered

    def test_missing_keyword(self):
        db = generate_spatial_db(seed=43)
        assert mck_grid(db, ["cafe", "zzz"]) is None
        assert mck_exhaustive(db, ["cafe", "zzz"]) is None

    def test_pruning_counts(self):
        db = generate_spatial_db(n_objects=100, seed=43)
        stats = MckStats()
        mck_grid(db, ["cafe", "museum", "park"], stats=stats)
        groups = [len(db.matching(k)) for k in ["cafe", "museum", "park"]]
        full = groups[0] * groups[1] * groups[2]
        assert stats.combinations_checked < full

    def test_combination_guard(self):
        db = generate_spatial_db(n_objects=100, seed=43)
        with pytest.raises(ValueError):
            mck_exhaustive(db, ["cafe", "museum", "park"], max_combinations=10)


def _mini_db(rows):
    """A bibliographic mini-db from (author, title) pairs — each author
    writes the paired paper."""
    db = Database(bibliographic_schema(with_cite=False))
    db.insert("conference", cid=0, name="venue", year=2000, location=None)
    for i, (author, title) in enumerate(rows):
        db.insert("author", aid=i, name=author)
        db.insert("paper", pid=i, title=title, abstract=None, cid=0)
        db.insert("write", wid=i, aid=i, pid=i)
    return db


class TestDatabaseSelection:
    def test_connected_db_outranks_disconnected(self):
        # DB "joined": widom writes an xml paper (connected).
        joined = _mini_db([("widom", "xml search"), ("smith", "graphs")])
        # DB "split": widom exists, xml exists, but in unrelated rows.
        split = _mini_db([("widom", "btrees"), ("smith", "xml search")])
        summaries = [
            DatabaseSummary.build("joined", joined),
            DatabaseSummary.build("split", split),
        ]
        ranked = rank_databases(summaries, ["widom", "xml"])
        assert ranked
        assert ranked[0][0].name == "joined"

    def test_missing_keyword_disqualifies(self):
        db = _mini_db([("widom", "xml search")])
        summary = DatabaseSummary.build("only", db)
        assert rank_databases([summary], ["widom", "zebra"]) == []

    def test_coverage(self):
        db = _mini_db([("widom", "xml search")])
        summary = DatabaseSummary.build("d", db)
        assert summary.coverage(["widom", "xml"]) == 1.0
        assert summary.coverage(["widom", "zzz"]) == 0.5

    def test_pair_distance_recorded(self):
        db = _mini_db([("widom", "xml search")])
        summary = DatabaseSummary.build("d", db)
        # widom (author) and xml (paper) are 2 FK hops apart via write.
        assert summary.pair_distance[frozenset(("widom", "xml"))] == 2


class TestKite:
    def _federation(self):
        pubs = _mini_db([("jennifer widom", "xml search")])
        # Second database: a personnel DB with matching person names.
        from repro.relational.schema import Column, Schema, TableSchema

        hr_schema = Schema(
            [
                TableSchema(
                    "person",
                    (
                        Column("id", "int"),
                        Column("fullname", "str", text=True),
                        Column("office", "str", nullable=True, text=True),
                    ),
                    primary_key="id",
                )
            ]
        )
        hr = Database(hr_schema)
        hr.insert("person", id=0, fullname="jennifer widom", office="gates 432")
        hr.insert("person", id=1, fullname="mark smith", office="gates 100")
        links = [
            InterDbLink("pubs", "author", "name", "hr", "person", "fullname")
        ]
        return CrossDatabase({"pubs": pubs, "hr": hr}, links)

    def test_link_edges_created(self):
        federation = self._federation()
        from repro.relational.database import TupleId

        widom_author = TupleId("pubs/author", 0)
        neighbors = {n for n, _ in federation.graph.neighbors(widom_author)}
        assert TupleId("hr/person", 0) in neighbors

    def test_cross_search_spans_databases(self):
        """Q = {xml, gates}: 'xml' lives in pubs, 'gates' in hr — the
        answer must join across databases through the person link."""
        federation = self._federation()
        result = cross_search(federation, ["xml", "gates"], k=3)
        assert result.trees
        top = result.trees[0]
        assert spans_databases(list(top.nodes))

    def test_single_db_answer_stays_local(self):
        federation = self._federation()
        result = cross_search(federation, ["widom", "xml"], k=1)
        assert result.trees
        assert not spans_databases(list(result.trees[0].nodes))

    def test_missing_keyword(self):
        federation = self._federation()
        assert cross_search(federation, ["xml", "zzz"]).trees == []

    def test_matching_tuples_sorted_and_stable(self):
        """Lookups return the same globally sorted list every time,
        re-merging cached per-database runs instead of re-sorting."""
        federation = self._federation()
        first = federation.matching_tuples("widom")
        assert first == sorted(first)
        assert first == federation.matching_tuples("widom")
        # The qualified runs are cached per keyword after the first
        # lookup, one sorted run per member database.
        runs = federation._qualified["widom"]
        assert len(runs) == len(federation.databases)
        for run in runs:
            assert run == sorted(run)
        # Cache identity: repeat lookups reuse the same run objects.
        assert federation._qualified["widom"] is runs

    def test_matching_tuples_merges_across_databases(self):
        federation = self._federation()
        tids = federation.matching_tuples("widom")
        prefixes = {tid.table.split("/", 1)[0] for tid in tids}
        assert prefixes == {"pubs", "hr"}
        # Equivalent to the brute-force qualified union, sorted.
        from repro.distributed.kite import _qualify

        expected = sorted(
            _qualify(name, tid)
            for name, index in federation.indexes.items()
            for tid in index.matching_tuples("widom")
        )
        assert tids == expected
