"""Unified structured query front end: DSL, lowering, cache keys, parity.

The tentpole invariant: bare keyword queries stay byte-identical to the
legacy path across every method × backend × shard count, while fielded
queries return only predicate-satisfying rows.  The cache-key sweep is
pinned in both directions — texts that canonicalise identically share
one entry, structurally different queries never collide.
"""

from __future__ import annotations

import os

import pytest

from repro.ambiguity.spelling import NoisyChannelCorrector
from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.index.text import tokenize
from repro.query import (
    FieldPredicate,
    QueryResponse,
    StructuredQuery,
    Term,
    compile_query,
    execute_pipeline,
    parse_query,
)
from repro.query.compiler import resolve_field
from repro.query.parser import MAX_GROUPS, PhraseConstraint
from repro.query.pipeline import highlight_snippet
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError, QueryParseError
from repro.resilience.failpoints import FAILPOINTS
from repro.sharding import ShardedSearchEngine
from repro.storage import BACKEND_NAMES

METHODS = [
    "schema",
    "banks",
    "banks2",
    "steiner",
    "distinct_root",
    "ease",
    "index_only",
]
ALL_BACKENDS = list(BACKEND_NAMES)
PARITY_QUERY = "database keyword"


def _signature(results):
    return [(r.score, r.network, r.tuple_ids()) for r in results]


def _result_rows(results):
    for result in results:
        for row in result.joined.distinct_rows():
            yield row


@pytest.fixture(scope="module")
def biblio_db():
    return generate_bibliographic_db(
        n_authors=20, n_conferences=4, n_papers=40, seed=7
    )


@pytest.fixture(scope="module")
def engine(biblio_db):
    return KeywordSearchEngine(biblio_db)


@pytest.fixture(autouse=True)
def _clear_failpoints():
    yield
    FAILPOINTS.clear()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class TestParser:
    @pytest.mark.parametrize(
        "text",
        [
            "database keyword",
            "  Database   KEYWORD  ",
            "john (database)",
            "time: 10",
            "x:",
            ":weird",
            "and or not",  # lowercase words, not operators
        ],
    )
    def test_bare_text_tokenizes_like_legacy(self, text):
        query = parse_query(text)
        assert query.is_bare
        assert query.bare_keywords() == tokenize(text)

    def test_fielded_eq(self):
        query = parse_query("author:smith database")
        assert not query.is_bare
        assert query.predicates == (
            FieldPredicate(field="author", op="eq", value="smith"),
        )
        assert [t.token for g in query.groups for t in g] == ["database"]

    def test_range_and_open_range(self):
        closed = parse_query("year:2008..2012").predicates[0]
        assert (closed.op, closed.lo, closed.hi) == ("range", 2008.0, 2012.0)
        left_open = parse_query("year:..2012").predicates[0]
        assert (left_open.lo, left_open.hi) == (None, 2012.0)
        right_open = parse_query("year:2008..").predicates[0]
        assert (right_open.lo, right_open.hi) == (2008.0, None)

    def test_bad_range_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("year:bad..range")

    def test_phrase_and_weight(self):
        query = parse_query('"query processing"^2 database')
        assert query.phrases == (
            PhraseConstraint(tokens=("query", "processing"), weight=2.0),
        )
        # Phrase tokens also join the keyword groups so CN machinery
        # can find candidate rows to post-filter.
        tokens = {t.token for g in query.groups for t in g}
        assert {"query", "processing", "database"} <= tokens
        assert parse_query("database^3").groups[0][0].weight == 3.0

    def test_unterminated_phrase_raises(self):
        with pytest.raises(QueryParseError):
            parse_query('"never closed')

    def test_not_and_or(self):
        query = parse_query("database -xml")
        assert query.excluded == ("xml",)
        query = parse_query("xml OR spatial")
        assert len(query.groups) == 1
        assert {t.token for t in query.groups[0]} == {"xml", "spatial"}

    def test_cnf_distribution(self):
        # (a AND b) OR c  =  (a OR c) AND (b OR c)
        query = parse_query("(alpha beta) OR gamma")
        groups = [frozenset(t.token for t in g) for g in query.groups]
        assert frozenset({"alpha", "gamma"}) in groups
        assert frozenset({"beta", "gamma"}) in groups

    def test_cnf_explosion_capped(self):
        clauses = " OR ".join(
            "(" + " ".join(f"w{i}x{j}" for j in range(4)) + ")" for i in range(8)
        )
        with pytest.raises(QueryParseError):
            parse_query(clauses)
        assert MAX_GROUPS == 64

    def test_canonical_roundtrip(self):
        texts = [
            "author:smith year:2008.. database^2 -noise",
            '(xml OR spatial) "query processing"',
            'venue:"very large databases"',
        ]
        for text in texts:
            query = parse_query(text)
            again = parse_query(query.canonical())
            assert again.cache_key() == query.cache_key(), text

    def test_cache_key_ignores_raw_and_cleaned_from(self):
        a = parse_query("database   keyword")
        b = parse_query("database keyword")
        assert a.raw != b.raw
        assert a.cache_key() == b.cache_key()
        rewritten = b.with_bare_keywords(["database", "keyword"])
        assert rewritten.cache_key() == b.cache_key()


# ----------------------------------------------------------------------
# Cache key sweep (satellite: rekey on canonical StructuredQuery)
# ----------------------------------------------------------------------
class TestCacheKey:
    def test_equivalent_texts_share_one_entry(self, engine):
        # Whitespace normalisation and spelling cleaning both land on
        # the same canonical query -> same key (the duplicate-entry
        # direction of the sweep).
        base = engine._query_key(PARITY_QUERY, "schema", 5)
        assert engine._query_key("database    keyword", "schema", 5) == base
        cleaned = engine._parse_canonical("databsae keyword")
        assert cleaned.cleaned_from is not None
        assert engine._query_key("databsae keyword", "schema", 5) == base

    def test_structurally_different_queries_never_collide(self, engine):
        keys = {
            engine._query_key(text, "schema", 5)
            for text in [
                "author smith",       # bare
                "author:smith",       # predicate
                "author^2 smith",     # weighted
                "author -smith",      # exclusion
                '"author smith"',     # phrase
                "author OR smith",    # disjunction
            ]
        }
        assert len(keys) == 6

    def test_key_varies_with_method_and_k(self, engine):
        assert engine._query_key(PARITY_QUERY, "schema", 5) != engine._query_key(
            PARITY_QUERY, "banks", 5
        )
        assert engine._query_key(PARITY_QUERY, "schema", 5) != engine._query_key(
            PARITY_QUERY, "schema", 6
        )

    def test_cached_equivalent_text_is_a_hit(self, biblio_db):
        fresh = KeywordSearchEngine(biblio_db)
        first = fresh.search(PARITY_QUERY, k=5)
        again = fresh.search("database    keyword", k=5)
        assert _signature(first) == _signature(again)
        stats = fresh.cache_stats()["results"]
        assert stats["hits"] >= 1


# ----------------------------------------------------------------------
# Parity gate: methods × backends × shards, cached vs uncached
# ----------------------------------------------------------------------
class TestParityGate:
    @pytest.fixture(scope="class")
    def baseline(self, biblio_db):
        eng = KeywordSearchEngine(biblio_db)
        return {
            m: _signature(eng.search(PARITY_QUERY, k=5, method=m))
            for m in METHODS
        }

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_bare_query_byte_identical(
        self, biblio_db, baseline, backend, n_shards, tmp_path_factory
    ):
        options = None
        if backend == "disk":
            path = tmp_path_factory.mktemp("parity") / "index.rkws"
            options = {"path": os.fspath(path)}
        if n_shards == 1:
            front = KeywordSearchEngine(
                biblio_db, backend=backend, backend_options=options
            )
        else:
            front = ShardedSearchEngine(
                biblio_db,
                n_shards=n_shards,
                backend=backend,
                backend_options=options,
            )
        for m in METHODS:
            uncached = _signature(
                front.search(PARITY_QUERY, k=5, method=m, use_cache=False)
            )
            cached = _signature(front.search(PARITY_QUERY, k=5, method=m))
            recached = _signature(front.search(PARITY_QUERY, k=5, method=m))
            assert uncached == baseline[m], (backend, n_shards, m)
            assert cached == uncached, (backend, n_shards, m)
            assert recached == cached, (backend, n_shards, m)
        if hasattr(front, "close"):
            front.close()

    @pytest.mark.parametrize("method", METHODS)
    def test_structured_sharded_matches_single(self, biblio_db, method):
        years = sorted({r.get("year") for r in biblio_db.table("conference").rows()})
        text = f"year:{years[0]}..{years[1]} database"
        single = KeywordSearchEngine(biblio_db)
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            assert _signature(
                sharded.search(text, k=5, method=method)
            ) == _signature(single.search(text, k=5, method=method))


# ----------------------------------------------------------------------
# Lowering semantics
# ----------------------------------------------------------------------
class TestLowering:
    @pytest.mark.parametrize("method", METHODS)
    def test_range_predicate_filters_rows(self, engine, biblio_db, method):
        years = sorted({r.get("year") for r in biblio_db.table("conference").rows()})
        lo, hi = years[0], years[1]
        results = engine.search(
            f"year:{lo}..{hi} database", k=10, method=method, use_cache=False
        )
        seen_conference = False
        for row in _result_rows(results):
            if row.table.name == "conference":
                seen_conference = True
                assert lo <= row.get("year") <= hi
        # At least one method variant should join through conference;
        # the assertion above is the contract for all of them.
        if method == "schema":
            assert results

    @pytest.mark.parametrize("method", METHODS)
    def test_eq_predicate_filters_rows(self, engine, biblio_db, method):
        name_token = next(
            iter(tokenize(next(biblio_db.table("author").rows()).get("name")))
        )
        results = engine.search(
            f"name:{name_token} database", k=10, method=method, use_cache=False
        )
        for row in _result_rows(results):
            if row.table.name == "author":
                assert name_token in tokenize(row.get("name"))

    def test_predicate_only_query_returns_matching_rows(self, engine, biblio_db):
        years = sorted({r.get("year") for r in biblio_db.table("conference").rows()})
        lo, hi = years[0], years[0]
        results = engine.search(f"year:{lo}..{hi}", k=50)
        expected = {
            rowid
            for rowid, row in enumerate(biblio_db.table("conference").rows())
            if lo <= row.get("year") <= hi
        }
        got = set()
        for result in results:
            ids = result.tuple_ids()
            assert len(ids) == 1 and ids[0].table == "conference"
            assert result.network == "filter(conference)"
            got.add(ids[0].rowid)
        assert got == expected

    def test_not_excludes_matching_tuples(self, engine):
        results = engine.search("database -xml", k=10, use_cache=False)
        assert results
        for row in _result_rows(results):
            assert "xml" not in tokenize(row.text())

    def test_or_branches_union(self, engine):
        results = engine.search("xml OR spatial", k=10, use_cache=False)
        assert results
        for result in results:
            texts = [tokenize(r.text()) for r in result.joined.distinct_rows()]
            assert any("xml" in t or "spatial" in t for t in texts)

    def test_weights_scale_scores(self, engine):
        bare = engine.search(PARITY_QUERY, k=3, use_cache=False)
        boosted = engine.search("database^4 keyword", k=3, use_cache=False)
        assert boosted and bare
        assert boosted[0].score > bare[0].score

    def test_phrase_requires_consecutive_run(self, engine, biblio_db):
        # Take an adjacent token pair that exists in some row, assert
        # every phrase answer exhibits the run; the reversed pair (if
        # absent from the corpus) must return nothing.
        pair = None
        for table in biblio_db.tables.values():
            for row in table.rows():
                toks = tokenize(row.text())
                if len(toks) >= 2:
                    pair = (toks[0], toks[1])
                    break
            if pair:
                break
        assert pair is not None
        results = engine.search(f'"{pair[0]} {pair[1]}"', k=5, use_cache=False)
        assert results

        def has_run(row, a, b):
            toks = tokenize(row.text())
            return any(
                toks[i] == a and toks[i + 1] == b for i in range(len(toks) - 1)
            )

        for result in results:
            assert any(
                has_run(row, pair[0], pair[1])
                for row in result.joined.distinct_rows()
            )

    def test_unknown_field_lists_addressable_names(self, engine):
        with pytest.raises(QueryParseError) as err:
            engine.search("nosuchfield:x", use_cache=False)
        assert "addressable" in str(err.value)

    def test_resolve_field_prefers_columns(self, biblio_db):
        # "year" is a conference column; "author" only a table name.
        assert resolve_field(biblio_db, "year") == [("conference", "year")]
        assert resolve_field(biblio_db, "author") == [("author", None)]

    def test_compile_reports_branches_and_weights(self, engine):
        compiled = compile_query(engine, parse_query("(xml OR spatial) database^2"))
        assert len(compiled.branches) == 2
        assert compiled.weights == {"database": 2.0}


# ----------------------------------------------------------------------
# Budgeted type-ahead (satellite: QueryBudget through Tastier)
# ----------------------------------------------------------------------
class TestBudgetedTastier:
    def test_unbudgeted_unchanged(self, engine):
        full = engine.suggest_answers(["dat", "key"], k=5)
        assert full.answers and not full.degraded and full.reason is None

    def test_exhaustion_returns_partial_not_raise(self, engine):
        tight = engine.suggest_answers(["dat", "key"], k=5, max_expansions=1)
        assert tight.degraded
        assert "budget" in (tight.reason or "")

    def test_grow_stage_partial_keeps_answers(self, engine):
        full = engine.suggest_answers(["dat", "key"], k=50)
        # Allow the scan, cap the per-candidate grow loop after one node.
        budget = QueryBudget(max_nodes=1)
        partial = engine.suggest_answers(["dat", "key"], k=50, budget=budget)
        assert partial.degraded
        assert len(partial.answers) < len(full.answers)
        assert set(partial.answers) <= set(full.answers)

    def test_failpoint_scan_degrades(self, engine):
        FAILPOINTS.activate(
            "tastier.scan", exc=BudgetExceededError("injected scan fault")
        )
        result = engine.suggest_answers(["dat"], k=5)
        assert result.degraded
        assert "injected" in result.reason
        assert result.answers == []


# ----------------------------------------------------------------------
# Noisy-channel prior (satellite: docstring/code agreement)
# ----------------------------------------------------------------------
class TestNoisyChannelPrior:
    def test_prior_formula_pinned(self):
        corrector = NoisyChannelCorrector({"alpha": 3, "beta": 1})
        total, vocab = 4, 2
        # (freq + 1) / (total + V + 1): the +1 reserves mass for the
        # unseen-token pseudo-entry.  This is the behaviour the ranking
        # fixtures were tuned against; the docstring now matches it.
        assert corrector.prior("alpha") == pytest.approx(4 / (total + vocab + 1))
        assert corrector.prior("beta") == pytest.approx(2 / (total + vocab + 1))
        assert corrector.prior("unseen") == pytest.approx(1 / (total + vocab + 1))

    def test_prior_sums_to_at_most_one_over_vocab_plus_unseen(self):
        corrector = NoisyChannelCorrector({"a": 5, "b": 2, "c": 1})
        mass = sum(corrector.prior(t) for t in ["a", "b", "c", "zzz"])
        assert mass == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Response pipeline
# ----------------------------------------------------------------------
class TestPipeline:
    def test_bare_pipeline_matches_plain_search(self, engine):
        response = execute_pipeline(engine, PARITY_QUERY, k=5)
        assert isinstance(response, QueryResponse)
        assert _signature(response.results) == _signature(
            engine.search(PARITY_QUERY, k=5)
        )
        payload = response.to_dict()
        assert payload["query"]["canonical"] == PARITY_QUERY
        assert "rewrites" not in payload
        assert "facets" not in payload

    def test_spelling_rewrite_reported(self, engine):
        response = execute_pipeline(engine, "databsae keyword", k=3, expand="spelling")
        kinds = [r["kind"] for r in response.rewrites]
        assert kinds == ["spelling"]
        assert response.rewrites[0]["to"] == "database keyword"

    def test_synonyms_widen_eq_predicates(self, engine, biblio_db):
        row = next(biblio_db.table("conference").rows())
        value = tokenize(row.get("name"))[0]
        response = execute_pipeline(
            engine, f"name:{value} database", k=5, expand="synonyms"
        )
        widened = [p for p in response.query.predicates if p.alternatives]
        # similar_values may legitimately find nothing on tiny data;
        # when it does, the rewrite must be reported symmetrically.
        assert bool(widened) == bool(response.rewrites)

    def test_unknown_expansion_rejected(self, engine):
        with pytest.raises(QueryParseError):
            execute_pipeline(engine, PARITY_QUERY, expand="bogus")

    def test_facets_cover_result_tables(self, engine):
        response = execute_pipeline(engine, PARITY_QUERY, k=5, facets=True)
        assert response.facets
        tables = {r.table.name for r in _result_rows(response.results)}
        facet_tables = {attr.split(".", 1)[0] for attr in response.facets}
        assert facet_tables <= tables
        for entries in response.facets.values():
            assert all(entry["count"] >= 1 for entry in entries)

    def test_explicit_facet_attribute(self, engine):
        response = execute_pipeline(
            engine, PARITY_QUERY, k=5, facets="conference.year"
        )
        assert set(response.facets) <= {"conference.year"}

    def test_numeric_facets_bucket(self, engine):
        years = sorted(
            {r.get("year") for r in engine.db.table("conference").rows()}
        )
        response = execute_pipeline(
            engine, f"year:{years[0]}..{years[-1]}", k=50, facets="conference.year"
        )
        entries = response.facets["conference.year"]
        assert sum(e["count"] for e in entries) == len(
            list(response.results)
        )
        assert all("lo" in e and "hi" in e for e in entries)

    def test_highlights_align_and_mark(self, engine):
        response = execute_pipeline(engine, PARITY_QUERY, k=4, highlight=True)
        assert len(response.highlights) == len(list(response.results))
        assert any("**" in h["snippet"] for h in response.highlights)

    def test_highlight_snippet_window(self):
        text = " ".join(f"w{i}" for i in range(30)) + " target match here"
        snippet, matches = highlight_snippet(text, ["target", "match"], window=5)
        assert matches == 2
        assert "**target** **match**" in snippet
        assert snippet.startswith("… ")

    def test_pipeline_over_sharded_front(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=2) as sharded:
            response = execute_pipeline(
                sharded, PARITY_QUERY, k=3, facets=True, highlight=True
            )
            assert response.facets and response.highlights
            assert _signature(response.results) == _signature(
                sharded.search(PARITY_QUERY, k=3)
            )


# ----------------------------------------------------------------------
# Misc engine surface
# ----------------------------------------------------------------------
class TestEngineSurface:
    def test_search_structured_entry(self, engine):
        query = engine._parse_canonical("author:john")
        direct = engine.search_structured(query, k=5)
        via_text = engine.search("author:john", k=5)
        assert _signature(direct) == _signature(via_text)

    def test_parse_cache_cleared_on_mutation(self, biblio_db):
        fresh = KeywordSearchEngine(tiny_bibliographic_db())
        fresh.search("john database", k=3)
        assert len(fresh._parse_cache) > 0
        fresh.db.insert(
            "author", aid=9000, name="zz cache probe", affiliation="x"
        )
        fresh.search("john database", k=3)  # triggers _sync_version
        # The vocabulary changed; stale cleaned parses must be gone
        # (re-parsed entries may repopulate the cache afterwards).
        assert fresh.db.data_version == fresh._served_version

    def test_span_tags_carry_canonical_query(self, biblio_db):
        fresh = KeywordSearchEngine(biblio_db, trace=True)
        results = fresh.search("author:john database", k=3, use_cache=False)
        root = results.trace.root
        assert root.tags["query"] == "database author:john"
