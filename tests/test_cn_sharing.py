"""Tests for the shared-execution CN engine: cardinality-ordered plans,
operator-level join sharing, parallel evaluation, deterministic top-k
tie-breaking, and incremental index/substrate maintenance."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.index.inverted import InvertedIndex
from repro.relational.executor import JoinStats
from repro.relational.schema_graph import SchemaGraph
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import SearchExecutionError
from repro.schema_search.candidate_networks import (
    CandidateNetwork,
    generate_candidate_networks,
)
from repro.schema_search.evaluate import (
    SharedCNEvaluator,
    all_results,
    all_results_shared,
    evaluate_cn,
)
from repro.schema_search.plans import (
    bfs_join_order,
    cardinality_join_order,
    prefix_codes,
    prefix_identity,
)
from repro.schema_search.topk import _TopKHeap, topk_naive, topk_shared
from repro.schema_search.tuple_sets import TupleSets

BIBLIO_QUERIES = [
    ["database", "query"],
    ["xml", "query"],
    ["xml", "keyword"],
    ["john", "database"],
]

PRODUCT_QUERIES = [
    ["lenovo", "laptop"],
    ["cheap", "tablet"],
]


def _substrates(db, index, keywords, max_size=4):
    tuple_sets = TupleSets(db, index, keywords)
    cns = generate_candidate_networks(
        SchemaGraph(db.schema), tuple_sets, max_size=max_size
    )
    return tuple_sets, cns


def _result_multiset(pairs):
    return sorted(
        (cn.canonical_code(), tuple(j.tuple_ids())) for cn, j in pairs
    )


def _topk_signature(result):
    return [
        (round(score, 9), label, joined.tuple_ids())
        for score, label, joined in result.results
    ]


@pytest.fixture(scope="module")
def biblio_setup(biblio_db):
    index = InvertedIndex(biblio_db)
    return biblio_db, index


@pytest.fixture(scope="module")
def joiny_cn(biblio_setup):
    """A multi-node CN plus its tuple sets, for plan/corruption tests."""
    db, index = biblio_setup
    tuple_sets, cns = _substrates(db, index, ["xml", "query"])
    cn = max(cns, key=lambda c: c.size)
    assert cn.size >= 3
    return tuple_sets, cn


# ----------------------------------------------------------------------
# Join-order planning
# ----------------------------------------------------------------------
class TestPlans:
    def test_orders_cover_every_node_once(self, biblio_setup):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, ["xml", "query"])
        for cn in cns:
            for steps in (
                bfs_join_order(cn),
                cardinality_join_order(cn, tuple_sets),
            ):
                assert sorted(s.node for s in steps) == list(range(cn.size))
                assert steps[0].parent is None and steps[0].edge is None
                seen = {steps[0].node}
                for step in steps[1:]:
                    assert step.parent in seen and step.edge is not None
                    seen.add(step.node)

    def test_cardinality_order_starts_at_smallest(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        steps = cardinality_join_order(cn, tuple_sets)
        smallest = min(tuple_sets.size(n.key) for n in cn.nodes)
        assert tuple_sets.size(cn.nodes[steps[0].node].key) == smallest

    def test_cardinality_order_deterministic(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        assert cardinality_join_order(cn, tuple_sets) == cardinality_join_order(
            cn, tuple_sets
        )

    def test_full_prefix_identity_matches_canonical_code(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        steps = cardinality_join_order(cn, tuple_sets)
        code, order = prefix_identity(cn, steps)
        assert code == cn.canonical_code()
        assert sorted(order) == list(range(cn.size))
        assert prefix_codes(cn, steps)[-1] == code

    def test_isomorphic_prefixes_share_codes(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        # Relabel the CN; every plan prefix must canonicalise the same.
        perm = list(reversed(range(cn.size)))
        remap = {old: new for new, old in enumerate(perm)}
        clone = CandidateNetwork(
            [cn.nodes[i] for i in perm],
            [(remap[a], remap[b], e) for a, b, e in cn.edges],
        )
        assert sorted(
            prefix_codes(cn, cardinality_join_order(cn, tuple_sets))
        ) == sorted(
            prefix_codes(clone, cardinality_join_order(clone, tuple_sets))
        )


class TestMalformedCNs:
    def test_missing_edge_raises(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        broken = CandidateNetwork(cn.nodes, cn.edges[:-1])
        with pytest.raises(SearchExecutionError, match="must be a tree"):
            evaluate_cn(broken, tuple_sets)

    def test_self_loop_edge_raises(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        a, b, edge = cn.edges[0]
        broken = CandidateNetwork(
            cn.nodes, [(a, a, edge)] + list(cn.edges[1:])
        )
        with pytest.raises(SearchExecutionError, match="invalid endpoints"):
            evaluate_cn(broken, tuple_sets)

    def test_out_of_range_endpoint_raises(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        a, b, edge = cn.edges[0]
        broken = CandidateNetwork(
            cn.nodes, [(a, 99, edge)] + list(cn.edges[1:])
        )
        with pytest.raises(SearchExecutionError, match="invalid endpoints"):
            bfs_join_order(broken)

    def test_disconnected_raises_instead_of_dropping_nodes(self, joiny_cn):
        # Right edge count, but a duplicated edge leaves a node
        # unreachable — the old BFS silently evaluated the fragment.
        tuple_sets, cn = joiny_cn
        a, b, edge = cn.edges[0]
        broken = CandidateNetwork(
            cn.nodes, [(a, b, edge)] + list(cn.edges[:-1])
        )
        with pytest.raises(SearchExecutionError, match="disconnected"):
            cardinality_join_order(broken, tuple_sets)

    def test_shared_evaluator_raises_eagerly(self, joiny_cn):
        tuple_sets, cn = joiny_cn
        broken = CandidateNetwork(cn.nodes, cn.edges[:-1])
        evaluator = SharedCNEvaluator(tuple_sets)
        with pytest.raises(SearchExecutionError):
            evaluator.evaluate(broken)  # raises before iteration starts


# ----------------------------------------------------------------------
# Shared evaluation: parity and reuse accounting
# ----------------------------------------------------------------------
class TestSharedParity:
    @pytest.mark.parametrize("keywords", BIBLIO_QUERIES)
    def test_biblio_same_results_fewer_joins(self, biblio_setup, keywords):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, keywords)
        unshared, shared = JoinStats(), JoinStats()
        baseline = all_results(cns, tuple_sets, stats=unshared)
        via_cache = all_results_shared(cns, tuple_sets, stats=shared)
        assert _result_multiset(baseline) == _result_multiset(via_cache)
        assert shared.joins_executed <= unshared.joins_executed

    @pytest.mark.parametrize("keywords", PRODUCT_QUERIES)
    def test_products_parity(self, product_db, keywords):
        index = InvertedIndex(product_db)
        tuple_sets, cns = _substrates(product_db, index, keywords)
        baseline = all_results(cns, tuple_sets)
        via_cache = all_results_shared(cns, tuple_sets)
        assert _result_multiset(baseline) == _result_multiset(via_cache)

    def test_reuse_counters_move(self, biblio_setup):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, ["xml", "query"])
        stats = JoinStats()
        all_results_shared(cns, tuple_sets, stats=stats)
        assert stats.reuse_hits > 0
        assert stats.joins_saved > 0
        assert stats.subexpressions_materialized > 0

    def test_single_cn_query_shares_nothing(self, biblio_setup):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, ["xml", "query"])
        stats = JoinStats()
        all_results_shared(cns[:1], tuple_sets, stats=stats)
        assert stats.reuse_hits == 0

    def test_require_distinct_prunes_repeats(self, biblio_setup):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, ["xml", "query"])
        for cn in cns:
            strict = list(evaluate_cn(cn, tuple_sets, require_distinct=True))
            loose = list(evaluate_cn(cn, tuple_sets, require_distinct=False))
            assert len(strict) <= len(loose)
            for joined in strict:
                ids = joined.tuple_ids()
                assert len(set(ids)) == len(ids)
        # The shared evaluator applies the same pruning.
        evaluator = SharedCNEvaluator(tuple_sets)
        for cn in cns:
            for joined in evaluator.evaluate(cn):
                ids = joined.tuple_ids()
                assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# Top-k: parity, determinism, budgets
# ----------------------------------------------------------------------
class TestTopKShared:
    @pytest.mark.parametrize("keywords", BIBLIO_QUERIES)
    def test_shared_matches_naive(self, biblio_setup, keywords):
        db, index = biblio_setup
        tuple_sets, cns = _substrates(db, index, keywords)
        naive = topk_naive(cns, tuple_sets, index, keywords, k=10)
        shared = topk_shared(cns, tuple_sets, index, keywords, k=10)
        assert _topk_signature(naive) == _topk_signature(shared)

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_parallel_matches_sequential(self, biblio_setup, workers):
        db, index = biblio_setup
        keywords = ["xml", "query"]
        tuple_sets, cns = _substrates(db, index, keywords)
        sequential = topk_shared(cns, tuple_sets, index, keywords, k=10)
        parallel = topk_shared(
            cns, tuple_sets, index, keywords, k=10, max_workers=workers
        )
        assert _topk_signature(sequential) == _topk_signature(parallel)
        assert parallel.batches >= 1

    def test_budget_exhaustion_returns_partial(self, biblio_setup):
        db, index = biblio_setup
        keywords = ["xml", "query"]
        tuple_sets, cns = _substrates(db, index, keywords)
        full = topk_shared(cns, tuple_sets, index, keywords, k=10)
        budget = QueryBudget(max_candidates=3)
        partial = topk_shared(
            cns, tuple_sets, index, keywords, k=10, budget=budget
        )
        assert budget.exhausted
        assert partial.cns_executed < len(cns)
        assert len(partial.results) <= len(full.results)

    def test_budgeted_runs_sequentially_even_with_workers(self, biblio_setup):
        db, index = biblio_setup
        keywords = ["xml", "query"]
        tuple_sets, cns = _substrates(db, index, keywords)
        budget = QueryBudget(max_candidates=3)
        partial = topk_shared(
            cns, tuple_sets, index, keywords, k=10, budget=budget, max_workers=4
        )
        assert budget.exhausted
        assert partial.batches == 1  # one evaluator, not a pool

    def test_heap_order_independent(self):
        from repro.relational.executor import JoinedRow
        from repro.relational.table import Row, Table
        from repro.relational.schema import Column, TableSchema

        table = Table(
            TableSchema("t", (Column("id", "int"),), primary_key="id")
        )
        for i in range(8):
            table.insert(id=i)
        entries = [
            (1.0, f"cn{i}", JoinedRow(("n0",), (table.row(i),)))
            for i in range(8)
        ]
        forward, backward = _TopKHeap(3), _TopKHeap(3)
        for score, label, joined in entries:
            forward.offer(score, label, joined)
        for score, label, joined in reversed(entries):
            backward.offer(score, label, joined)
        take = lambda heap: [
            (s, l, j.tuple_ids()) for s, l, j in heap.sorted_results()
        ]
        assert take(forward) == take(backward)


# ----------------------------------------------------------------------
# Incremental index / tuple-set maintenance
# ----------------------------------------------------------------------
class TestIncrementalIndex:
    @staticmethod
    def _insert_delta(db):
        db.insert("author", aid=901, name="delta xml author", affiliation=None)
        db.insert("author", aid=902, name="widom apprentice", affiliation=None)

    def test_refresh_matches_full_rebuild(self):
        db = tiny_bibliographic_db()
        index = InvertedIndex(db)
        self._insert_delta(db)
        patched = index.refresh()
        assert patched == 2
        fresh = InvertedIndex(db)
        assert index.vocabulary == fresh.vocabulary
        assert index.document_count == fresh.document_count
        for token in fresh.vocabulary:
            assert index.document_frequency(token) == fresh.document_frequency(
                token
            )
            assert index.idf(token) == pytest.approx(fresh.idf(token))
            assert set(index.matching_tuples_view(token)) == set(
                fresh.matching_tuples_view(token)
            )
            for tid in fresh.matching_tuples_view(token):
                assert index.term_frequency(tid, token) == fresh.term_frequency(
                    tid, token
                )

    def test_refresh_without_inserts_is_noop(self, tiny_db):
        index = InvertedIndex(tiny_db)
        vocab = index.vocabulary
        assert index.refresh() == 0
        assert index.vocabulary == vocab

    def test_tuple_sets_refresh_matches_rebuild(self):
        db = tiny_bibliographic_db()
        index = InvertedIndex(db)
        # Built BEFORE the inserts: the stale sets only know old rows.
        stale = TupleSets(db, index, ["widom", "xml"])
        self._insert_delta(db)
        index.refresh()
        created = stale.refresh()
        fresh = TupleSets(db, index, ["widom", "xml"])
        assert stale.non_free_keys() == fresh.non_free_keys()
        for key in fresh.non_free_keys():
            assert stale.tuple_ids(key) == fresh.tuple_ids(key)
        # Free sets are computed live and shrink as rows get matched.
        for key in fresh.non_free_keys():
            free_key = type(key)(key.table, frozenset())
            assert stale.tuple_ids(free_key) == fresh.tuple_ids(free_key)
        assert all(k in fresh.non_free_keys() for k in created)

    def test_tuple_sets_refresh_builds_stale_sets_lazily(self):
        db = tiny_bibliographic_db()
        index = InvertedIndex(db)
        sets = TupleSets(db, index, ["widom", "xml"])
        before = set(sets.non_free_keys())
        # A row containing BOTH keywords creates a brand-new key.
        db.insert("author", aid=903, name="widom xml tandem", affiliation=None)
        index.refresh()
        created = sets.refresh()
        assert created  # the {widom, xml} author set did not exist before
        assert set(sets.non_free_keys()) > before


class TestIncrementalEngine:
    def test_incremental_search_matches_fresh_engine(self):
        db = tiny_bibliographic_db()
        warm = KeywordSearchEngine(db)
        warm.search("widom xml", k=5)  # fill caches pre-insert
        db.insert("author", aid=910, name="xml widom junior", affiliation=None)
        warm_results = warm.search("widom xml", k=5)
        fresh = KeywordSearchEngine(db, enable_caches=False)
        fresh_results = fresh.search("widom xml", k=5)
        signature = lambda rs: [
            (round(r.score, 9), r.network, tuple(r.tuple_ids())) for r in rs
        ]
        assert signature(warm_results) == signature(fresh_results)
        assert warm.substrates.patches["applied"] >= 1
        assert warm.substrates.invalidations == 0

    def test_new_tuple_set_key_drops_cn_memos(self):
        db = tiny_bibliographic_db()
        engine = KeywordSearchEngine(db)
        engine.substrates.tuple_sets(["widom", "xml"])
        engine.substrates.candidate_networks(["widom", "xml"], 4)
        # This author matches BOTH keywords -> a new tuple-set key, so
        # the memoised CN list for that query is stale and must drop.
        db.insert("author", aid=911, name="widom xml oracle", affiliation=None)
        engine.substrates.tuple_sets(["widom", "xml"])
        assert engine.substrates.patches["cn_memos_dropped"] >= 1

    def test_sharing_counters_exposed(self):
        engine = KeywordSearchEngine(generate_bibliographic_db(seed=7))
        engine.search("xml query", k=5, method="schema")
        sharing = engine.cache_stats()["sharing"]
        assert sharing["queries"] == 1
        assert sharing["joins_executed"] > 0
        assert sharing["reuse_hits"] > 0
        assert sharing["subexpressions_materialized"] > 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_execution_modes_agree(self, workers):
        db = generate_bibliographic_db(seed=7)
        shared = KeywordSearchEngine(db, cn_workers=workers)
        pipeline = KeywordSearchEngine(db, cn_execution="pipeline")
        signature = lambda rs: [
            (round(r.score, 9), r.network, tuple(r.tuple_ids())) for r in rs
        ]
        for text in ("xml query", "john database", "widom xml"):
            assert signature(shared.search(text, k=5)) == signature(
                pipeline.search(text, k=5)
            )
