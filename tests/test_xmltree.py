"""Tests for the XML tree substrate (nodes, Dewey labels, index)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.xml_corpora import slide_conf_tree, slide_imdb_tree
from repro.xmltree.build import element as e
from repro.xmltree.build import parse_xml, text_element as t
from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import (
    XmlNode,
    common_prefix,
    is_ancestor,
    lca_dewey,
)


class TestNode:
    def test_dewey_assignment(self):
        tree = e("a", e("b", t("c", "x")), t("d", "y"))
        assert tree.dewey == (0,)
        b = tree.children[0]
        assert b.dewey == (0, 0)
        assert b.children[0].dewey == (0, 0, 0)
        assert tree.children[1].dewey == (0, 1)

    def test_label_path(self):
        tree = slide_conf_tree()
        title = tree.children[2].children[0]
        assert title.label_path() == "/conf/paper/title"

    def test_document_order_is_dewey_order(self):
        tree = slide_conf_tree()
        nodes = list(tree.descendants(include_self=True))
        deweys = [n.dewey for n in nodes]
        assert deweys == sorted(deweys)

    def test_ancestors_and_is_ancestor(self):
        tree = slide_conf_tree()
        author = tree.children[2].children[1]  # first paper's first author
        chain = [n.tag for n in author.ancestors()]
        assert chain == ["paper", "conf"]
        assert tree.is_ancestor_of(author)
        assert not author.is_ancestor_of(tree)

    def test_text_concatenation(self):
        tree = e("x", t("a", "hello"), t("b", "world"))
        assert tree.text() == "hello world"

    def test_node_at(self):
        tree = slide_conf_tree()
        node = tree.node_at((0, 2, 1))
        assert node is not None
        assert node.tag == "author"
        assert tree.node_at((0, 99)) is None

    def test_subtree_size(self):
        tree = e("a", e("b", t("c", "x")), t("d", "y"))
        assert tree.subtree_size() == 4

    def test_find_by_tag(self):
        tree = slide_conf_tree()
        assert len(tree.find_by_tag("paper")) == 2
        assert len(tree.find_by_tag("author")) == 4


class TestDeweyMath:
    def test_common_prefix(self):
        assert common_prefix((0, 1, 2), (0, 1, 3)) == (0, 1)
        assert common_prefix((0,), (0, 1)) == (0,)
        assert common_prefix((1,), (2,)) == ()

    def test_lca_dewey(self):
        assert lca_dewey([(0, 1, 2), (0, 1, 3), (0, 2)]) == (0,)
        assert lca_dewey([(0, 1), (0, 1)]) == (0, 1)

    def test_is_ancestor(self):
        assert is_ancestor((0,), (0, 1))
        assert not is_ancestor((0, 1), (0, 1))
        assert not is_ancestor((0, 1), (0, 2))

    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=5),
        st.lists(st.integers(0, 3), min_size=1, max_size=5),
    )
    @settings(max_examples=100)
    def test_common_prefix_is_ancestor_or_self_of_both(self, a, b):
        a, b = tuple(a), tuple(b)
        prefix = common_prefix(a, b)
        assert a[: len(prefix)] == prefix
        assert b[: len(prefix)] == prefix


class TestParse:
    def test_parse_roundtrip_structure(self):
        markup = "<conf><name>sigmod</name><paper><title>xml</title></paper></conf>"
        tree = parse_xml(markup)
        assert tree.tag == "conf"
        assert tree.children[0].value == "sigmod"
        assert tree.children[1].children[0].value == "xml"

    def test_element_string_shorthand(self):
        node = e("name", "sigmod")
        assert node.value == "sigmod"


class TestXmlKeywordIndex:
    def test_value_matches_sorted(self):
        index = XmlKeywordIndex(slide_conf_tree())
        marks = index.matches("mark")
        assert marks == sorted(marks)
        assert len(marks) == 2  # one author per paper

    def test_tag_matches(self):
        index = XmlKeywordIndex(slide_conf_tree())
        papers = index.matches("paper")
        assert len(papers) == 2

    def test_tag_matching_disabled(self):
        index = XmlKeywordIndex(slide_conf_tree(), match_tags=False)
        assert index.matches("paper") == []
        assert len(index.matches("mark")) == 2

    def test_unknown_keyword(self):
        index = XmlKeywordIndex(slide_conf_tree())
        assert index.matches("zebra") == []
        assert not index.has_all(["mark", "zebra"])

    def test_path_counts(self):
        index = XmlKeywordIndex(slide_conf_tree())
        assert index.path_count("/conf/paper") == 2
        assert index.path_count("/conf/paper/author") == 4

    def test_ief(self):
        index = XmlKeywordIndex(slide_conf_tree())
        assert index.inverse_element_frequency("mark") == index.node_count / 2

    def test_left_right_closest_match(self):
        deweys = [(0, 1), (0, 3), (0, 5)]
        assert XmlKeywordIndex.left_match(deweys, (0, 2)) == (0, 1)
        assert XmlKeywordIndex.right_match(deweys, (0, 2)) == (0, 3)
        assert XmlKeywordIndex.left_match(deweys, (0, 0)) is None
        assert XmlKeywordIndex.right_match(deweys, (0, 9)) is None

    def test_closest_match_prefers_deeper_lca(self):
        deweys = [(0, 0, 5), (0, 2)]
        # For (0, 0, 9): left match (0,0,5) shares prefix (0,0);
        # right match (0,2) shares only (0,).
        assert XmlKeywordIndex.closest_match(deweys, (0, 0, 9)) == (0, 0, 5)

    def test_imdb_label_paths(self):
        index = XmlKeywordIndex(slide_imdb_tree())
        assert "/imdb/movie" in index.label_paths()
        assert "/imdb/director/name" in index.label_paths()
