"""Tests for XSeek / XReal / sketch-based return-type inference."""

import pytest

from repro.datasets.xml_corpora import (
    generate_bib_xml,
    slide_conf_tree,
    slide_imdb_tree,
    slide_scientist_tree,
)
from repro.xml_search.xbridge_sketch import PathSketch
from repro.xml_search.xreal import XReal
from repro.xml_search.xseek import NodeCategory, XSeek


class TestXSeek:
    def test_entity_classification(self):
        xseek = XSeek(slide_conf_tree())
        assert xseek.category("paper") is NodeCategory.ENTITY
        assert xseek.category("author") is NodeCategory.ENTITY  # repeats
        assert xseek.category("name") is NodeCategory.ATTRIBUTE
        assert xseek.category("year") is NodeCategory.ATTRIBUTE

    def test_keyword_classification(self):
        xseek = XSeek(slide_conf_tree())
        labels, predicates = xseek.classify_keywords(["paper", "mark"])
        assert labels == ["paper"]
        assert predicates == ["mark"]

    def test_explicit_return_nodes(self):
        """Q1-style (slide 51): a label keyword names the output."""
        tree = slide_conf_tree()
        xseek = XSeek(tree)
        nodes = xseek.return_nodes(tree, ["mark", "title"])
        assert nodes
        assert all(n.tag == "title" for n in nodes)

    def test_implicit_return_entity(self):
        """Q2-style: all-predicate query returns the master entity."""
        tree = slide_conf_tree()
        xseek = XSeek(tree)
        nodes = xseek.return_nodes(tree, ["mark", "chen"])
        assert len(nodes) == 1
        assert nodes[0].tag == "paper"

    def test_fallback_to_result_root(self):
        tree = slide_scientist_tree()
        xseek = XSeek(tree)
        nodes = xseek.return_nodes(tree, ["nonexistent"])
        assert nodes == [tree]


class TestXReal:
    def test_slide37_return_type(self):
        """Q = {widom-ish author, xml}: /conf-level paper type wins over
        attribute types."""
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)
        xreal = XReal(tree)
        ranked = xreal.infer_return_type(["xml", "john"])
        assert ranked
        assert ranked[0][0].endswith("/paper")

    def test_type_requires_all_keywords(self):
        tree = slide_imdb_tree()
        xreal = XReal(tree)
        # "shining" and "1935" never co-occur under one movie.
        assert xreal.type_score("/imdb/movie", ["shining", "1935"]) == 0.0

    def test_instances_scored(self):
        tree = slide_imdb_tree()
        xreal = XReal(tree)
        instances = xreal.instances("/imdb/movie", ["shining"])
        assert len(instances) == 1
        node, score = instances[0]
        assert node.child_by_tag("name").value == "shining"
        assert score > 0


class TestPathSketch:
    def test_lossless_sketch_matches_xreal(self):
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)
        xreal = XReal(tree)
        sketch = PathSketch(tree)
        for query in (["xml", "john"], ["search"], ["paper", "widom"]):
            exact = xreal.infer_return_type(query)
            estimated = sketch.infer_return_type(query)
            assert [p for p, _ in estimated] == [p for p, _ in exact]
            for (pa, sa), (pb, sb) in zip(exact, estimated):
                assert sa == pytest.approx(sb)

    def test_lossy_sketch_smaller(self):
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)
        full = PathSketch(tree)
        lossy = PathSketch(tree, top_terms_only=5)
        assert lossy.sketch_size() < full.sketch_size()

    def test_lossy_sketch_keeps_frequent_types(self):
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)
        lossy = PathSketch(tree, top_terms_only=10)
        ranked = lossy.infer_return_type(["paper"])
        assert ranked
        assert ranked[0][0].endswith("/paper")

    def test_estimated_frequency_zero_for_missing(self):
        sketch = PathSketch(slide_conf_tree())
        assert sketch.estimated_frequency("/conf/paper", "zebra") == 0
