"""Tests for tuple sets, CN generation, evaluation, top-k and SPARK."""

import pytest

from repro.relational.executor import JoinStats
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import (
    CandidateNetwork,
    generate_candidate_networks,
)
from repro.schema_search.evaluate import all_results, cn_results
from repro.schema_search.parallel import (
    SharedExecutionGraph,
    partition_greedy,
    partition_round_robin,
    partition_sharing_aware,
    simulate_makespan,
)
from repro.schema_search.scoring import (
    monotonic_result_score,
    spark_score,
    tuple_score,
)
from repro.schema_search.spark import (
    SparkStats,
    block_pipeline,
    naive_enumerate,
    skyline_sweep,
)
from repro.schema_search.topk import (
    topk_global_pipeline,
    topk_naive,
    topk_single_pipeline,
    topk_sparse,
)
from repro.schema_search.tuple_sets import TupleSetKey, TupleSets


@pytest.fixture(scope="module")
def widom_setup(tiny_db, tiny_index):
    """Slide 28: Q = {widom, xml} on the author-write-paper schema."""
    ts = TupleSets(tiny_db, tiny_index, ["widom", "xml"])
    graph = SchemaGraph(tiny_db.schema)
    return tiny_db, tiny_index, graph, ts


class TestTupleSets:
    def test_exact_partition(self, widom_setup):
        _, _, _, ts = widom_setup
        keys = ts.non_free_keys()
        labels = {k.label() for k in keys}
        assert "author^{widom}" in labels
        assert any(l.startswith("paper^{xml}") for l in labels)

    def test_free_set_excludes_matches(self, widom_setup, tiny_db):
        _, _, _, ts = widom_setup
        free_papers = ts.tuple_ids(TupleSetKey("paper", frozenset()))
        nonfree = ts.tuple_ids(TupleSetKey("paper", frozenset(["xml"])))
        assert set(free_papers).isdisjoint(set(nonfree))
        assert len(free_papers) + sum(
            ts.size(k) for k in ts.keys_for_table("paper")
        ) == len(tiny_db.table("paper"))

    def test_covered_keywords(self, widom_setup):
        _, _, _, ts = widom_setup
        assert ts.covered_keywords() == {"widom", "xml"}

    def test_sizes(self, widom_setup):
        _, _, _, ts = widom_setup
        for key in ts.non_free_keys():
            assert ts.size(key) == len(ts.tuple_ids(key)) > 0


class TestCNGeneration:
    def test_slide28_shapes_present(self, widom_setup):
        """Slide 28 enumerates AQ, PQ, AQ-W-PQ, AQ-W-PQ-W-AQ, PQ-W-AQ-W-PQ."""
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=5)
        labels = {cn.label() for cn in cns}
        # Single-node CNs exist only if one tuple contains both keywords;
        # the 2-keyword path CN must exist:
        assert any(
            "author^{widom}" in l and "paper^{xml}" in l and "write" in l
            for l in labels
        )
        # The two-authors-one-paper CN (size 5):
        assert any(
            l.count("author^{widom}") == 2 and "paper^{xml}" in l for l in labels
        )

    def test_all_valid(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=5)
        for cn in cns:
            assert cn.is_valid(["widom", "xml"])
            assert not cn.has_degenerate_join()

    def test_no_duplicates(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=5)
        codes = [cn.canonical_code() for cn in cns]
        assert len(codes) == len(set(codes))

    def test_canonical_code_invariant_under_relabeling(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=4)
        # Rebuild each CN with node order reversed; codes must match.
        for cn in cns:
            if cn.size < 2:
                continue
            n = cn.size
            perm = list(reversed(range(n)))
            remap = {old: new for new, old in enumerate(perm)}
            nodes = [cn.nodes[i] for i in perm]
            edges = [(remap[a], remap[b], e) for a, b, e in cn.edges]
            clone = CandidateNetwork(nodes, edges)
            assert clone.canonical_code() == cn.canonical_code()

    def test_missing_keyword_yields_nothing(self, tiny_db, tiny_index):
        ts = TupleSets(tiny_db, tiny_index, ["widom", "zebra"])
        graph = SchemaGraph(tiny_db.schema)
        assert generate_candidate_networks(graph, ts, max_size=5) == []

    def test_growth_with_max_size(self, widom_setup):
        _, _, graph, ts = widom_setup
        counts = [
            len(generate_candidate_networks(graph, ts, max_size=m))
            for m in (1, 2, 3, 4, 5)
        ]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_max_networks_cap(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=5, max_networks=3)
        assert len(cns) == 3


class TestEvaluation:
    def test_widom_xml_join_result(self, widom_setup):
        """The tiny DB has widom writing 'xml query optimization':
        the A-W-P CN must produce that joining network."""
        tiny_db, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=3)
        path_cns = [c for c in cns if c.size == 3]
        found = False
        for cn in path_cns:
            for joined in cn_results(cn, ts):
                names = [r.table.name for r in joined.rows]
                if sorted(names) == ["author", "paper", "write"]:
                    author = next(r for r in joined.rows if r.table.name == "author")
                    paper = next(r for r in joined.rows if r.table.name == "paper")
                    if "widom" in author["name"] and "xml" in paper["title"]:
                        found = True
        assert found

    def test_results_across_cns_disjoint(self, widom_setup):
        """DISCOVER's exact-partition guarantee: no result appears twice."""
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=4)
        seen = set()
        for cn, joined in all_results(cns, ts):
            key = frozenset(joined.tuple_ids())
            assert key not in seen, (cn.label(), key)
            seen.add(key)

    def test_no_repeated_tuple_in_result(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=5)
        for cn, joined in all_results(cns, ts):
            tids = joined.tuple_ids()
            assert len(set(tids)) == len(tids)

    def test_stats_counted(self, widom_setup):
        _, _, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=3)
        stats = JoinStats()
        all_results(cns, ts, stats=stats)
        assert stats.tuples_read > 0
        assert stats.joins_executed > 0


class TestScoring:
    def test_tuple_score_positive_for_match(self, widom_setup):
        tiny_db, index, _, ts = widom_setup
        tid = ts.tuple_ids(TupleSetKey("author", frozenset(["widom"])))[0]
        assert tuple_score(index, tid, ["widom", "xml"]) > 0
        assert tuple_score(index, tid, ["zebra"]) == 0

    def test_spark_completeness_rewards_coverage(self, widom_setup):
        tiny_db, index, graph, ts = widom_setup
        cns = generate_candidate_networks(graph, ts, max_size=3)
        results = all_results(cns, ts)
        # Any full result (covers both keywords) must outscore a
        # hypothetical half coverage: check score > 0 for all results.
        for cn, joined in results:
            assert spark_score(index, joined, ["widom", "xml"]) > 0


class TestTopK:
    QUERIES = [["widom", "xml"], ["john", "sigmod"], ["cloud", "john"]]

    def _setup(self, db, index, query):
        ts = TupleSets(db, index, query)
        graph = SchemaGraph(db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=4)
        return cns, ts

    @pytest.mark.parametrize("query", QUERIES)
    def test_all_strategies_agree(self, tiny_db, tiny_index, query):
        cns, ts = self._setup(tiny_db, tiny_index, query)
        if not cns:
            pytest.skip("no CNs for query")
        k = 5
        naive = topk_naive(cns, ts, tiny_index, query, k=k)
        sparse = topk_sparse(cns, ts, tiny_index, query, k=k)
        single = topk_single_pipeline(cns, ts, tiny_index, query, k=k)
        global_ = topk_global_pipeline(cns, ts, tiny_index, query, k=k)
        assert sparse.scores() == naive.scores()
        assert single.scores() == naive.scores()
        assert global_.scores() == naive.scores()

    def test_pipelines_touch_less_data_on_generated_db(self, biblio_db, biblio_index):
        query = ["database", "john"]
        cns, ts = self._setup(biblio_db, biblio_index, query)
        if not cns:
            pytest.skip("no CNs for query")
        k = 3
        naive = topk_naive(cns, ts, biblio_index, query, k=k)
        sparse = topk_sparse(cns, ts, biblio_index, query, k=k)
        global_ = topk_global_pipeline(cns, ts, biblio_index, query, k=k)
        assert global_.scores() == naive.scores()
        assert sparse.stats.tuples_read <= naive.stats.tuples_read
        assert global_.batches <= naive.batches

    def test_topk_returns_at_most_k(self, tiny_db, tiny_index):
        cns, ts = self._setup(tiny_db, tiny_index, ["widom", "xml"])
        result = topk_naive(cns, ts, tiny_index, ["widom", "xml"], k=2)
        assert len(result.results) <= 2
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)


class TestSpark:
    def test_spark_algorithms_agree(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        ts = TupleSets(tiny_db, tiny_index, query)
        graph = SchemaGraph(tiny_db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=4)
        k = 5
        naive = naive_enumerate(cns, ts, tiny_index, query, k=k)
        sweep = skyline_sweep(cns, ts, tiny_index, query, k=k)
        blocks = block_pipeline(cns, ts, tiny_index, query, k=k, block_size=2)
        naive_scores = [round(s, 9) for s, _ in naive]
        assert [round(s, 9) for s, _ in sweep] == naive_scores
        assert [round(s, 9) for s, _ in blocks] == naive_scores

    def test_sweep_verifies_fewer_combinations(self, biblio_db, biblio_index):
        query = ["database", "john"]
        ts = TupleSets(biblio_db, biblio_index, query)
        graph = SchemaGraph(biblio_db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=3)
        if not cns:
            pytest.skip("no CNs")
        naive_stats, sweep_stats = SparkStats(), SparkStats()
        naive = naive_enumerate(cns, ts, biblio_index, query, k=3, stats=naive_stats)
        sweep = skyline_sweep(cns, ts, biblio_index, query, k=3, stats=sweep_stats)
        assert [round(s, 9) for s, _ in sweep] == [round(s, 9) for s, _ in naive]
        assert sweep_stats.combinations_verified <= naive_stats.combinations_verified


class TestParallel:
    def _graph(self, db, index, query):
        ts = TupleSets(db, index, query)
        schema_graph = SchemaGraph(db.schema)
        cns = generate_candidate_networks(schema_graph, ts, max_size=5)
        return SharedExecutionGraph(cns, ts)

    def test_sharing_exists(self, tiny_db, tiny_index):
        graph = self._graph(tiny_db, tiny_index, ["widom", "xml"])
        assert graph.total_shared_cost() < graph.total_unshared_cost()

    def test_policies_cover_all_cns(self, tiny_db, tiny_index):
        graph = self._graph(tiny_db, tiny_index, ["widom", "xml"])
        n = len(graph.cns)
        for policy in (partition_round_robin, partition_greedy, partition_sharing_aware):
            assignment = policy(graph, 3)
            assigned = sorted(i for core in assignment for i in core)
            assert assigned == list(range(n))

    def test_sharing_aware_not_worse_than_round_robin(self, biblio_db, biblio_index):
        graph = self._graph(biblio_db, biblio_index, ["database", "john"])
        if len(graph.cns) < 4:
            pytest.skip("too few CNs")
        cores = 4
        rr = simulate_makespan(graph, partition_round_robin(graph, cores))
        aware = simulate_makespan(graph, partition_sharing_aware(graph, cores))
        assert aware <= rr + 1e-9

    def test_makespan_positive(self, tiny_db, tiny_index):
        graph = self._graph(tiny_db, tiny_index, ["widom", "xml"])
        assignment = partition_greedy(graph, 2)
        assert simulate_makespan(graph, assignment) > 0
