"""Cross-validation and property-based tests on core invariants."""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.inex import (
    average_generalized_precision,
    char_precision_recall_f,
    generalized_precision_at_k,
    read_prefix_with_tolerance,
)
from repro.graph.data_graph import DataGraph
from repro.graph_search.steiner import group_steiner_dp
from repro.index.hub import HubIndex
from repro.index.qgram import edit_distance
from repro.relational.database import TupleId


def N(i):
    return TupleId("t", i)


def random_graph(rng, n_nodes, n_edges, max_weight=5):
    g = DataGraph()
    for i in range(n_nodes):
        g.add_node(N(i))
    for _ in range(n_edges):
        u, v = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if u != v:
            g.add_edge(N(u), N(v), rng.randint(1, max_weight))
    return g


class TestDijkstraAgainstNetworkx:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_distances_match(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng, 12, 20)
        nxg = g.to_networkx()
        source = N(0)
        ours = g.dijkstra(source)
        theirs = nx.single_source_dijkstra_path_length(nxg, source, weight="weight")
        assert set(ours) == set(theirs)
        for node, dist in ours.items():
            assert dist == pytest.approx(theirs[node])

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_shortest_path_weight_matches(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng, 10, 16)
        nxg = g.to_networkx()
        for target in (N(3), N(7)):
            path = g.shortest_path(N(0), target)
            if path is None:
                assert not nx.has_path(nxg, N(0), target)
                continue
            weight = sum(
                g.edge_weight(path[i], path[i + 1]) for i in range(len(path) - 1)
            )
            expected = nx.dijkstra_path_length(nxg, N(0), target, weight="weight")
            assert weight == pytest.approx(expected)


class TestSteinerAgainstBruteForce:
    def _brute_force(self, g, groups):
        """Optimal group Steiner weight: min over node subsets that are
        connected and touch every group, of the subset's MST weight."""
        nodes = g.nodes
        nxg = g.to_networkx()
        best = float("inf")
        for r in range(1, len(nodes) + 1):
            for subset in itertools.combinations(nodes, r):
                ss = set(subset)
                if not all(ss & set(group) for group in groups):
                    continue
                sub = nxg.subgraph(ss)
                if not nx.is_connected(sub):
                    continue
                mst_weight = sum(
                    d["weight"] for *_ , d in nx.minimum_spanning_tree(
                        sub, weight="weight"
                    ).edges(data=True)
                )
                best = min(best, mst_weight)
        return best

    @pytest.mark.parametrize("seed", [11, 13, 17, 19])
    def test_dp_is_optimal(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng, 7, 12)
        nodes = g.nodes
        groups = [
            [nodes[rng.randrange(len(nodes))]],
            [nodes[rng.randrange(len(nodes))], nodes[rng.randrange(len(nodes))]],
        ]
        tree = group_steiner_dp(g, groups)
        brute = self._brute_force(g, groups)
        if tree is None:
            assert brute == float("inf")
        else:
            assert tree.weight == pytest.approx(brute)


class TestHubIndexAgainstDijkstra:
    @pytest.mark.parametrize("seed", [3, 5, 7])
    def test_all_pairs_exact(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng, 10, 15)
        hub = HubIndex(g, hub_count=3)
        for u in g.nodes:
            exact = g.dijkstra(u)
            for v in g.nodes:
                expected = exact.get(v, float("inf"))
                assert hub.distance(u, v) == pytest.approx(expected)


class TestEditDistanceProperties:
    @given(
        st.text(alphabet="abc", max_size=8),
        st.text(alphabet="abc", max_size=8),
    )
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(
        st.text(alphabet="ab", max_size=6),
        st.text(alphabet="ab", max_size=6),
        st.text(alphabet="ab", max_size=6),
    )
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(st.text(alphabet="abc", max_size=8))
    @settings(max_examples=50)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0


class TestInexProperties:
    intervals = st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 30)).map(
            lambda t: (t[0], t[0] + t[1])
        ),
        max_size=4,
    )

    @given(intervals, st.integers(0, 60), st.integers(1, 60))
    @settings(max_examples=100)
    def test_prf_bounds(self, relevant, start, length):
        read = read_prefix_with_tolerance(
            (start, start + length), relevant, tolerance=5
        )
        p, r, f = char_precision_recall_f(read, relevant)
        assert 0.0 <= p <= 1.0
        assert 0.0 <= r <= 1.0
        assert 0.0 <= f <= 1.0
        assert f <= max(p, r) + 1e-9

    @given(intervals, st.integers(0, 40), st.integers(1, 40))
    @settings(max_examples=100)
    def test_tolerance_monotone_in_chars_read(self, relevant, start, length):
        result = (start, start + length)
        small = read_prefix_with_tolerance(result, relevant, tolerance=2)
        large = read_prefix_with_tolerance(result, relevant, tolerance=10)
        assert small <= large  # subset: more patience, more read

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_agp_bounded_by_max_score(self, scores):
        agp = average_generalized_precision(scores)
        assert 0.0 <= agp <= max(scores) + 1e-9

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=10))
    @settings(max_examples=100)
    def test_gp_prefix_of_sorted_scores_monotone(self, scores):
        ordered = sorted(scores, reverse=True)
        gps = [
            generalized_precision_at_k(ordered, k)
            for k in range(1, len(ordered) + 1)
        ]
        assert all(gps[i] >= gps[i + 1] - 1e-9 for i in range(len(gps) - 1))


class TestDifferentiationProperties:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(["t1", "t2"]), st.text("abc", min_size=1, max_size=2)),
                min_size=1,
                max_size=6,
            ),
            min_size=2,
            max_size=4,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_greedy_never_below_top_frequency(self, raw_sets, budget):
        from repro.analysis.differentiation import (
            FeatureSet,
            degree_of_difference,
            select_features_greedy,
            select_features_top_frequency,
        )

        sets_a = [FeatureSet.of(i, fs) for i, fs in enumerate(raw_sets)]
        sets_b = [FeatureSet.of(i, fs) for i, fs in enumerate(raw_sets)]
        select_features_top_frequency(sets_a, budget)
        select_features_greedy(sets_b, budget)
        dod_a = degree_of_difference([s.selected for s in sets_a])
        dod_b = degree_of_difference([s.selected for s in sets_b])
        assert dod_b >= dod_a

    @given(st.integers(0, 100))
    @settings(max_examples=20)
    def test_dod_zero_for_identical_selections(self, seed):
        from repro.analysis.differentiation import degree_of_difference

        selection = {("t", "a"), ("t", "b")}
        assert degree_of_difference([set(selection), set(selection)]) == 0


class TestAggregationProperties:
    def test_every_cell_covers_and_is_minimal(self, events_db):
        from repro.analysis.aggregation import cell_members, minimal_group_bys
        from repro.index.text import tokenize

        rows = list(events_db.rows("events"))
        keywords = ["pool", "motorcycle"]
        cells = minimal_group_bys(rows, ["month", "state"], keywords)
        for cell in cells:
            members = cell_members(rows, cell)
            covered = set()
            for row in members:
                covered |= set(tokenize(row.text()))
            assert set(keywords) <= covered
        for a in cells:
            for b in cells:
                if a != b:
                    assert not a.specialises(b)
