"""SLCA / ELCA algorithm tests, including slide examples and
property-based equivalence of all SLCA implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.xml_corpora import (
    generate_bib_xml,
    slide_conf_tree,
    slide_query_consistency_tree,
)
from repro.xml_search.elca import elca_bruteforce, elca_candidates_verify
from repro.xml_search.slca import (
    contains_all,
    lca_candidates,
    slca_bruteforce,
    slca_indexed_lookup_eager,
    slca_multiway,
    slca_scan_eager,
)
from repro.xmltree.index import XmlKeywordIndex


ALGORITHMS = [slca_indexed_lookup_eager, slca_scan_eager, slca_multiway]


def deweys_strategy():
    """Random sorted lists of abstract Dewey labels."""
    label = st.lists(st.integers(0, 2), min_size=1, max_size=4).map(
        lambda xs: (0,) + tuple(xs)
    )
    one_list = st.lists(label, min_size=1, max_size=8).map(
        lambda ls: sorted(set(ls))
    )
    return st.lists(one_list, min_size=1, max_size=3)


class TestSlcaSlideExample:
    """Slide 33: Q = {Keyword, Mark} on the two-paper conf tree."""

    def test_slca_is_first_paper(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        lists = index.match_lists(["keyword", "mark"])
        slcas = slca_indexed_lookup_eager(lists)
        assert len(slcas) == 1
        node = tree.node_at(slcas[0])
        assert node.tag == "paper"
        assert node.dewey == (0, 2)  # first paper, after name and year

    def test_conf_root_is_lca_but_not_slca(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        lists = index.match_lists(["keyword", "mark"])
        all_lcas = lca_candidates(lists)
        assert (0,) in all_lcas  # conf root is an LCA...
        assert (0,) not in slca_indexed_lookup_eager(lists)  # ...but redundant

    def test_single_keyword_slca_is_match_set(self):
        index = XmlKeywordIndex(slide_conf_tree())
        lists = index.match_lists(["mark"])
        assert slca_indexed_lookup_eager(lists) == index.matches("mark")

    def test_missing_keyword_gives_empty(self):
        index = XmlKeywordIndex(slide_conf_tree())
        lists = index.match_lists(["mark", "zebra"])
        for algo in ALGORITHMS:
            assert algo(lists) == []


class TestSlcaProperties:
    @given(deweys_strategy())
    @settings(max_examples=200, deadline=None)
    def test_all_algorithms_agree_with_bruteforce(self, lists):
        expected = slca_bruteforce(lists)
        for algo in ALGORITHMS:
            assert algo(lists) == expected, algo.__name__

    @given(deweys_strategy())
    @settings(max_examples=100, deadline=None)
    def test_no_ancestor_descendant_pairs_in_output(self, lists):
        slcas = slca_indexed_lookup_eager(lists)
        for a in slcas:
            for b in slcas:
                if a != b:
                    assert b[: len(a)] != a  # a is not an ancestor of b

    @given(deweys_strategy())
    @settings(max_examples=100, deadline=None)
    def test_every_slca_contains_all_keywords(self, lists):
        for slca in slca_indexed_lookup_eager(lists):
            assert contains_all(lists, slca)

    def test_generated_corpus_agreement(self):
        tree = generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)
        index = XmlKeywordIndex(tree)
        for query in [["xml", "john"], ["keyword", "search"], ["paper", "widom"]]:
            lists = index.match_lists(query)
            if any(not l for l in lists):
                continue
            expected = slca_indexed_lookup_eager(lists)
            assert slca_scan_eager(lists) == expected
            assert slca_multiway(lists) == expected


class TestElca:
    def test_elca_superset_of_slca(self):
        tree = slide_query_consistency_tree()
        index = XmlKeywordIndex(tree)
        lists = index.match_lists(["paper", "mark"])
        slcas = set(slca_indexed_lookup_eager(lists))
        elcas = set(elca_candidates_verify(lists))
        assert slcas <= elcas

    def test_elca_slide_style_exclusivity(self):
        # conf contains "sigmod" in name and papers with authors:
        # query {sigmod, mark}: the conf node is the only node containing
        # both, so it is both SLCA and ELCA.
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        lists = index.match_lists(["sigmod", "mark"])
        assert elca_candidates_verify(lists) == [(0,)]

    def test_elca_with_witness_exclusion(self):
        # Classic case: root has its own keyword occurrences plus a child
        # that is itself contains-all; both are ELCAs.
        from repro.xmltree.build import element as e, text_element as t

        tree = e(
            "root",
            t("x", "alpha"),
            t("y", "beta"),
            e("inner", t("a", "alpha"), t("b", "beta")),
        )
        index = XmlKeywordIndex(tree, match_tags=False)
        lists = index.match_lists(["alpha", "beta"])
        elcas = elca_candidates_verify(lists)
        assert (0,) in elcas  # root has exclusive witnesses
        assert (0, 2) in elcas  # inner is contains-all on its own

    def test_elca_root_excluded_when_no_exclusive_witness(self):
        from repro.xmltree.build import element as e, text_element as t

        tree = e(
            "root",
            e("inner", t("a", "alpha"), t("b", "beta")),
            t("z", "gamma"),
        )
        index = XmlKeywordIndex(tree, match_tags=False)
        lists = index.match_lists(["alpha", "beta"])
        elcas = elca_candidates_verify(lists)
        assert elcas == [(0, 0)]  # root's witnesses all live inside inner

    def test_bruteforce_agrees_on_corpora(self):
        for seed in [3, 5, 9]:
            tree = generate_bib_xml(n_confs=3, papers_per_conf=5, seed=seed)
            index = XmlKeywordIndex(tree)
            for query in [["xml", "search"], ["paper", "john"], ["conf", "xml"]]:
                lists = index.match_lists(query)
                if any(not l for l in lists):
                    continue
                expected = elca_bruteforce(tree, query)
                assert elca_candidates_verify(lists) == expected, (seed, query)
