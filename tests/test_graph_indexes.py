"""Tests for graph substrate and the distance/forward/hub/reachability indexes."""

import pytest

from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph.weights import BanksWeighting
from repro.index.distance import KeywordDistanceIndex, bounded_bfs_distances
from repro.index.forward import DeltaForwardIndex
from repro.index.hub import HubIndex
from repro.index.reachability import DReachabilityIndex
from repro.index.trie import Trie
from repro.relational.database import TupleId


def N(i):
    return TupleId("t", i)


def path_graph(n, weight=1.0):
    g = DataGraph()
    for i in range(n - 1):
        g.add_edge(N(i), N(i + 1), weight)
    return g


class TestDataGraph:
    def test_build_from_db(self, tiny_db, tiny_graph):
        assert len(tiny_graph) == tiny_db.size()
        # write table rows each connect author and paper
        w0 = TupleId("write", 0)
        nbr_tables = {n.table for n, _ in tiny_graph.neighbors(w0)}
        assert nbr_tables == {"author", "paper"}

    def test_edges_match_fk_count(self, tiny_db, tiny_graph):
        expected = 0
        for table in tiny_db.tables.values():
            for fk in table.schema.foreign_keys:
                for row in table.rows():
                    if row[fk.column] is not None:
                        expected += 1
        assert tiny_graph.edge_count() == expected

    def test_dijkstra_on_path(self):
        g = path_graph(5, weight=2.0)
        dist = g.dijkstra(N(0))
        assert dist[N(4)] == 8.0

    def test_dijkstra_early_stop(self):
        g = path_graph(10)
        dist = g.dijkstra(N(0), targets={N(2)})
        assert dist[N(2)] == 2.0

    def test_dijkstra_max_distance(self):
        g = path_graph(10)
        dist = g.dijkstra(N(0), max_distance=3)
        assert N(3) in dist and N(4) not in dist

    def test_dijkstra_early_stop_settles_minimum(self):
        # Settling the near target must not settle the rest of the path.
        g = path_graph(10)
        dist = g.dijkstra(N(0), targets={N(1)})
        assert dist[N(1)] == 1.0
        assert N(5) not in dist and N(9) not in dist

    def test_dijkstra_bounded_with_unreachable_target(self):
        # Target beyond max_distance: terminate when the frontier
        # drains instead of chasing the unreachable target.
        g = path_graph(10)
        dist = g.dijkstra(N(0), max_distance=3, targets={N(9)})
        assert N(9) not in dist
        assert dist[N(3)] == 3.0
        assert N(4) not in dist

    def test_dijkstra_targets_outside_graph(self):
        # Targets not in the graph are discarded up front; the scan
        # stops immediately rather than exploring everything.
        g = path_graph(10)
        dist = g.dijkstra(N(0), targets={TupleId("zzz", 0)})
        assert dist == {N(0): 0.0}

    def test_dijkstra_mixed_targets(self):
        # One reachable + one absent target: stop once the reachable
        # one settles.
        g = path_graph(10)
        dist = g.dijkstra(N(0), targets={N(2), TupleId("zzz", 0)})
        assert dist[N(2)] == 2.0
        assert N(8) not in dist

    def test_shortest_path(self):
        g = path_graph(4)
        assert g.shortest_path(N(0), N(3)) == [N(0), N(1), N(2), N(3)]
        g2 = DataGraph()
        g2.add_node(N(0))
        g2.add_node(N(9))
        assert g2.shortest_path(N(0), N(9)) is None

    def test_bfs_hops(self):
        g = path_graph(6)
        hops = g.bfs_hops(N(0), max_hops=2)
        assert hops == {N(0): 0, N(1): 1, N(2): 2}

    def test_subgraph(self):
        g = path_graph(5)
        sub = g.subgraph([N(0), N(1), N(3)])
        assert len(sub) == 3
        assert sub.edge_weight(N(0), N(1)) == 1.0
        assert sub.edge_weight(N(1), N(3)) is None

    def test_parallel_edge_keeps_min_weight(self):
        g = DataGraph()
        g.add_edge(N(0), N(1), 5.0)
        g.add_edge(N(0), N(1), 2.0)
        assert g.edge_weight(N(0), N(1)) == 2.0

    def test_banks_weights(self, tiny_db):
        weighting = BanksWeighting()
        graph = build_data_graph(
            tiny_db,
            edge_weight=weighting.edge_weight,
            node_weight=weighting.node_prestige,
        )
        # Papers are referenced by writes/cites: positive prestige.
        assert graph.node_weight(TupleId("paper", 0)) > 0
        # All edges at least weight 1.
        for u in graph.nodes:
            for v, w in graph.neighbors(u):
                assert w >= 1.0


class TestKeywordDistanceIndex:
    def test_distances_from_matches(self, tiny_graph, tiny_index):
        kdi = KeywordDistanceIndex(tiny_graph, tiny_index, max_distance=4)
        dists = kdi.distances("widom")
        source = tiny_index.matching_tuples("widom")[0]
        assert dists[source] == 0.0
        assert all(d <= 4 for d in dists.values())

    def test_candidate_roots_reach_all(self, tiny_graph, tiny_index):
        kdi = KeywordDistanceIndex(tiny_graph, tiny_index, max_distance=6)
        roots = kdi.candidate_roots(["widom", "xml"])
        assert roots
        for root, cost in roots.items():
            assert cost == pytest.approx(
                kdi.distance(root, "widom") + kdi.distance(root, "xml")
            )

    def test_sorted_list_ascending(self, tiny_graph, tiny_index):
        kdi = KeywordDistanceIndex(tiny_graph, tiny_index)
        lst = kdi.sorted_list("xml")
        dists = [d for d, _ in lst]
        assert dists == sorted(dists)

    def test_bounded_bfs_multi_source(self):
        g = path_graph(7)
        dist = bounded_bfs_distances(g, [N(0), N(6)], max_distance=2)
        assert dist[N(2)] == 2.0
        assert dist[N(4)] == 2.0
        assert N(3) not in dist


class TestDeltaForward:
    def test_forward_reaches_neighbors(self, tiny_graph, tiny_index):
        trie = Trie(tiny_index.vocabulary)
        fwd = DeltaForwardIndex(tiny_graph, tiny_index, trie, delta=1)
        # A write tuple has no text but reaches author/paper tokens in 1 hop.
        w0 = TupleId("write", 0)
        tokens = {trie.token(i) for i in fwd.tokens_within_delta(w0)}
        assert tokens  # at least the author name and paper title terms

    def test_reaches_range(self, tiny_graph, tiny_index):
        trie = Trie(tiny_index.vocabulary)
        fwd = DeltaForwardIndex(tiny_graph, tiny_index, trie, delta=2)
        rng = trie.prefix_range("xml")
        paper0 = TupleId("paper", 0)
        assert fwd.reaches_range(paper0, *rng)
        assert not fwd.reaches_range(paper0, len(trie) + 5, len(trie) + 9)

    def test_filter_candidates(self, tiny_graph, tiny_index):
        trie = Trie(tiny_index.vocabulary)
        fwd = DeltaForwardIndex(tiny_graph, tiny_index, trie, delta=2)
        rng_widom = trie.prefix_range("widom")
        candidates = list(tiny_graph.nodes)
        kept = fwd.filter_candidates(candidates, [rng_widom])
        assert kept
        assert len(kept) < len(candidates)

    def test_delta_zero_is_local_tokens(self, tiny_graph, tiny_index):
        trie = Trie(tiny_index.vocabulary)
        fwd = DeltaForwardIndex(tiny_graph, tiny_index, trie, delta=0)
        paper0 = TupleId("paper", 0)
        tokens = {trie.token(i) for i in fwd.tokens_within_delta(paper0)}
        assert tokens == {
            t for t in tiny_index.tokens_of(paper0) if t in trie
        }


class TestHubIndex:
    def test_exact_distances_on_path(self):
        g = path_graph(8)
        hub = HubIndex(g, hub_count=2)
        for i in range(8):
            for j in range(8):
                assert hub.distance(N(i), N(j)) == pytest.approx(abs(i - j))

    def test_exact_on_database_graph(self, tiny_graph):
        hub = HubIndex(tiny_graph, hub_count=4)
        nodes = tiny_graph.nodes[:8]
        for u in nodes:
            exact = tiny_graph.dijkstra(u)
            for v in nodes:
                expected = exact.get(v, float("inf"))
                assert hub.distance(u, v) == pytest.approx(expected)

    def test_hub_selection_by_degree(self, tiny_graph):
        hub = HubIndex(tiny_graph, hub_count=3)
        degrees = sorted((tiny_graph.degree(n) for n in tiny_graph.nodes), reverse=True)
        for h in hub.hubs:
            assert tiny_graph.degree(h) >= degrees[min(5, len(degrees) - 1)]

    def test_index_smaller_than_all_pairs(self, biblio_graph):
        n = len(biblio_graph)
        hub = HubIndex(biblio_graph, hub_count=4 * int(n ** 0.5))
        # The hub decomposition must undercut the O(n^2) all-pairs table
        # it replaces (Goldman et al.'s space argument, slide 122).
        assert hub.index_entries() < n * n / 2


class TestDReachability:
    def test_n2n_matches_bfs(self, tiny_graph, tiny_index):
        idx = DReachabilityIndex(tiny_graph, tiny_index, d=2)
        node = TupleId("author", 0)
        assert idx.nodes_within(node) == set(tiny_graph.bfs_hops(node, max_hops=2))

    def test_term_reachability(self, tiny_graph, tiny_index):
        idx = DReachabilityIndex(tiny_graph, tiny_index, d=2)
        # author 1 (widom) writes paper 3 ("xml query optimization"):
        # "xml" reachable within 2 hops (author -> write -> paper).
        assert idx.can_reach_term(TupleId("author", 1), "xml")
        assert not idx.can_reach_term(TupleId("author", 1), "zzz")

    def test_prune_candidates(self, tiny_graph, tiny_index):
        idx = DReachabilityIndex(tiny_graph, tiny_index, d=2)
        candidates = list(tiny_graph.nodes)
        kept = idx.prune_candidates(candidates, ["widom", "xml"])
        assert kept
        assert len(kept) < len(candidates)
        for node in kept:
            assert idx.can_reach_all(node, ["widom", "xml"])

    def test_relation_term_reachable(self, tiny_graph, tiny_index):
        idx = DReachabilityIndex(tiny_graph, tiny_index, d=2)
        assert idx.relation_term_reachable("author", "widom", "paper")

    def test_d_zero(self, tiny_graph, tiny_index):
        idx = DReachabilityIndex(tiny_graph, tiny_index, d=0)
        node = TupleId("paper", 0)
        assert idx.nodes_within(node) == {node}
        assert idx.can_reach_term(node, "xml")
