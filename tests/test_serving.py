"""Serving front end: admission control, swaps, HTTP, mutation races."""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.results import ResultSet
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.obs.metrics import MetricsRegistry
from repro.resilience.budget import QueryBudget
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.errors import BudgetExceededError
from repro.resilience.failpoints import FAILPOINTS
from repro.serving.admission import (
    AdmissionController,
    LatencyEWMA,
    MODE_FALLBACK,
    MODE_FULL,
    MODE_INDEX_ONLY,
    TokenBucket,
)
from repro.serving.routes import Request, Router
from repro.serving.server import ServingServer
from repro.serving.swap import EngineHandle


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# Admission primitives
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.1)  # 1 token at 10/s
        clock.advance(0.1)
        assert bucket.try_acquire() == 0.0

    def test_retry_after_accounts_for_partial_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        clock.advance(0.25)  # 0.5 tokens back
        assert bucket.try_acquire() == pytest.approx(0.25)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestLatencyEWMA:
    def test_first_observation_seeds(self):
        ewma = LatencyEWMA(alpha=0.2)
        ewma.observe(100.0)
        assert ewma.value == 100.0

    def test_moves_toward_observations(self):
        ewma = LatencyEWMA(alpha=0.5)
        ewma.observe(100.0)
        ewma.observe(200.0)
        assert ewma.value == pytest.approx(150.0)
        assert ewma.count == 2

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LatencyEWMA(alpha=0.0)


class TestAdmissionLadder:
    def make(self, **kw):
        kw.setdefault("max_concurrency", 4)
        kw.setdefault("max_queue_depth", 6)  # capacity 10
        kw.setdefault("tenant_rate", 1000.0)
        kw.setdefault("tenant_burst", 1000.0)
        kw.setdefault("metrics", MetricsRegistry())
        return AdmissionController(**kw)

    def _set_depth(self, ctl: AdmissionController, depth: int) -> None:
        for _ in range(depth):
            ctl.enqueued()

    def test_idle_is_full_mode(self):
        decision = self.make().admit()
        assert decision.admitted and decision.mode == MODE_FULL

    def test_ladder_descends_with_queue_depth(self):
        ctl = self.make()  # thresholds 0.5 / 0.8, capacity 10
        self._set_depth(ctl, 5)  # pressure 0.5
        assert ctl.admit().mode == MODE_FALLBACK
        ctl.enqueued()
        ctl.enqueued()
        ctl.enqueued()  # pressure 0.8
        assert ctl.admit().mode == MODE_INDEX_ONLY

    def test_full_queue_sheds(self):
        ctl = self.make()
        self._set_depth(ctl, 10)
        decision = ctl.admit()
        assert not decision.admitted
        assert decision.retry_after_s > 0.0
        assert "queue full" in decision.reason

    def test_latency_pressure_sheds_with_queue_space(self):
        ctl = self.make(target_latency_ms=100.0)
        ctl.enqueued()
        ctl.started()
        ctl.finished(500.0)  # EWMA 500ms -> ratio 2.5
        decision = ctl.admit()
        assert not decision.admitted
        assert "overload" in decision.reason

    def test_per_tenant_rate_limit(self):
        clock = FakeClock()
        ctl = self.make(tenant_rate=1.0, tenant_burst=1.0, clock=clock)
        assert ctl.admit("a").admitted
        shed = ctl.admit("a")
        assert not shed.admitted and shed.retry_after_s == pytest.approx(1.0)
        assert ctl.admit("b").admitted  # buckets are per tenant

    def test_lifecycle_counters(self):
        ctl = self.make()
        ctl.enqueued()
        ctl.started()
        assert (ctl.queued, ctl.inflight) == (0, 1)
        ctl.finished(12.0)
        assert ctl.inflight == 0
        assert ctl.latency.value == 12.0
        stats = ctl.stats()
        assert stats["capacity"] == 10 and stats["tenants"] == 0

    def test_admit_failpoint(self):
        ctl = self.make()
        FAILPOINTS.activate("serve.admit", exc=RuntimeError("boom"), key="t1")
        assert ctl.admit("other").admitted
        with pytest.raises(RuntimeError):
            ctl.admit("t1")

    def test_server_side_shed_does_not_charge_tenant(self):
        clock = FakeClock()
        ctl = self.make(tenant_rate=1.0, tenant_burst=1.0, clock=clock)
        self._set_depth(ctl, 10)  # queue full
        shed = ctl.admit("a")
        assert not shed.admitted and "queue full" in shed.reason
        for _ in range(10):
            ctl.abandoned()  # queue drains
        # The queue-full shed never debited the tenant's bucket: the
        # single token is still there.
        assert ctl.admit("a").admitted

    def test_tenant_map_is_bounded(self):
        clock = FakeClock()
        ctl = self.make(
            max_tenants=2, tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        assert ctl.admit("a").admitted
        assert ctl.admit("b").admitted
        assert ctl.stats()["tenants"] == 2
        # Both buckets are freshly drained (not evictable): tenant "c"
        # shares the overflow bucket instead of growing the map.
        assert ctl.admit("c").admitted
        assert ctl.stats()["tenants"] == 2
        shed = ctl.admit("d")  # overflow bucket is empty now too
        assert not shed.admitted and "rate limit" in shed.reason
        assert ctl.stats()["tenants"] == 2
        # Once idle buckets refill to burst they are evictable: a new
        # tenant gets a real bucket and the map stays at the cap.
        clock.advance(60.0)
        assert ctl.admit("e").admitted
        assert ctl.stats()["tenants"] == 2

    def test_max_tenants_validation(self):
        with pytest.raises(ValueError):
            self.make(max_tenants=0)


# ----------------------------------------------------------------------
# Generations
# ----------------------------------------------------------------------
class TestEngineHandle:
    def test_swap_increments_generation_and_tears_down(self):
        torn = []
        handle = EngineHandle("old", teardown=torn.append)
        result = handle.swap("new")
        assert handle.generation == 2 and handle.engine == "new"
        assert result.drained and result.previous_generation == 1
        assert torn == ["old"]

    def test_pinned_reader_keeps_old_generation(self):
        handle = EngineHandle("old", teardown=lambda e: None)
        release = threading.Event()
        seen = {}

        def reader():
            with handle.acquire() as (engine, gen):
                seen["engine"], seen["gen"] = engine, gen
                release.wait(5.0)

        t = threading.Thread(target=reader)
        t.start()
        while "engine" not in seen:
            time.sleep(0.001)
        done = {}

        def swapper():
            done["result"] = handle.swap("new", drain_timeout_s=5.0)

        s = threading.Thread(target=swapper)
        s.start()
        time.sleep(0.05)
        # The flip is immediate; the drain is still waiting on the reader.
        assert handle.generation == 2
        assert s.is_alive()
        release.set()
        s.join(5.0)
        t.join(5.0)
        assert done["result"].drained
        assert (seen["engine"], seen["gen"]) == ("old", 1)

    def test_drain_timeout_leaks_instead_of_tearing(self):
        torn = []
        handle = EngineHandle("old", teardown=torn.append)
        gen = handle._current
        gen.pin()  # a reader that never finishes
        result = handle.swap("new", drain_timeout_s=0.05)
        assert not result.drained and result.old_readers_left == 1
        assert torn == []  # never tear down under a live reader
        gen.unpin()

    def test_swap_failpoint_aborts_before_flip(self):
        handle = EngineHandle("old")
        FAILPOINTS.activate("serve.swap", exc=RuntimeError("chaos"), times=1)
        with pytest.raises(RuntimeError):
            handle.swap("new")
        assert handle.generation == 1 and not handle.swapping

    def test_flip_returns_immediately_drain_blocks(self):
        """flip() never waits on readers; only drain() does.

        This split lets the router hold its mutation lock across the
        (fast) flip and run the (possibly slow) drain after releasing
        it, so a pinned long-running query can't stall inserts.
        """
        torn = []
        handle = EngineHandle("old", teardown=torn.append)
        gen = handle._current
        gen.pin()  # a reader on the old generation
        old = handle.flip("new")
        assert handle.generation == 2 and handle.engine == "new"
        assert handle.swapping  # stays true until the drain finishes
        assert torn == []
        done = {}

        def drainer():
            done["result"] = handle.drain(old, drain_timeout_s=5.0)

        t = threading.Thread(target=drainer)
        t.start()
        time.sleep(0.05)
        assert t.is_alive()  # blocked on the pinned reader
        gen.unpin()
        t.join(5.0)
        assert done["result"].drained
        assert done["result"].generation == 2
        assert torn == ["old"]
        assert not handle.swapping


# ----------------------------------------------------------------------
# ResultSet JSON round trip
# ----------------------------------------------------------------------
class TestResultSetRoundTrip:
    def test_exact_round_trip_with_db(self):
        db = tiny_bibliographic_db()
        engine = KeywordSearchEngine(db)
        results = engine.search("keyword search", k=3)
        assert results, "fixture query must match"
        wire = json.loads(json.dumps(results.to_dict()))
        back = ResultSet.from_dict(wire, db=db)
        assert [r.score for r in back] == [r.score for r in results]
        assert [r.network for r in back] == [r.network for r in results]
        assert [r.tuple_ids() for r in back] == [r.tuple_ids() for r in results]
        assert back.method == results.method
        assert back.status == results.status

    def test_degradation_metadata_survives(self):
        rs = ResultSet(
            [],
            method="index_only",
            degraded=True,
            degraded_reason="budget exhausted",
            fallback_from="steiner",
        )
        back = ResultSet.from_dict(json.loads(json.dumps(rs.to_dict())))
        assert back.degraded is True
        assert back.degraded_reason == "budget exhausted"
        assert back.fallback_from == "steiner"
        assert back.status == "degraded"

    def test_error_round_trip(self):
        rs = ResultSet([], method="banks", error=BudgetExceededError("out of gas"))
        back = ResultSet.from_dict(rs.to_dict())
        assert isinstance(back.error, BudgetExceededError)
        assert "out of gas" in str(back.error)
        assert back.status == "error"

    def test_without_db_results_stay_dicts(self):
        db = tiny_bibliographic_db()
        results = KeywordSearchEngine(db).search("keyword search", k=2)
        back = ResultSet.from_dict(results.to_dict())
        assert back and isinstance(back[0], dict)
        assert back[0]["score"] == results[0].score


# ----------------------------------------------------------------------
# Budget poisoning + breaker gauges
# ----------------------------------------------------------------------
class TestBudgetPoison:
    def test_poison_exhausts_at_next_tick(self):
        budget = QueryBudget(timeout_ms=60_000)
        budget.tick_nodes()
        budget.poison("client disconnected")
        assert budget.poisoned and budget.exhausted
        with pytest.raises(BudgetExceededError):
            budget.tick_nodes(1000)

    def test_renew_does_not_resurrect_poisoned(self):
        budget = QueryBudget(timeout_ms=60_000)
        budget.poison()
        budget.renew()
        assert budget.poisoned and budget.exhausted
        assert budget.snapshot()["poisoned"] is True

    def test_renew_still_clears_ordinary_exhaustion(self):
        budget = QueryBudget(max_nodes=1)
        with pytest.raises(BudgetExceededError):
            budget.tick_nodes(5)
        budget.renew()
        assert not budget.exhausted and not budget.poisoned


class TestBreakerTimeInState:
    def test_time_in_state_tracks_transitions(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=30.0, clock=clock
        )
        clock.advance(5.0)
        assert breaker.time_in_state_s() == pytest.approx(5.0)
        breaker.record_failure()
        breaker.record_failure()  # -> open
        assert breaker.state == "open"
        assert breaker.time_in_state_s() == pytest.approx(0.0)
        clock.advance(3.0)
        assert breaker.time_in_state_s() == pytest.approx(3.0)
        assert breaker.stats()["time_in_state_s"] == pytest.approx(3.0)

    def test_engine_registers_breaker_gauges(self):
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        snap = engine.metrics.snapshot()
        assert snap["circuit.state"] == "closed"
        assert snap["circuit.time_in_state_s"] >= 0.0


# ----------------------------------------------------------------------
# Router unit tests (no HTTP)
# ----------------------------------------------------------------------
class SpyEngine:
    """Records search kwargs; returns a canned ResultSet."""

    def __init__(self):
        self.calls = []
        self.db = None

    def search(self, text, k=10, method="schema", budget=None, fallback=False):
        self.calls.append(
            {"text": text, "k": k, "method": method, "budget": budget,
             "fallback": fallback}
        )
        return ResultSet([], method=method)


@pytest.fixture()
def router_env():
    engine = SpyEngine()
    metrics = MetricsRegistry()
    admission = AdmissionController(
        max_concurrency=2, max_queue_depth=2, metrics=metrics
    )
    executor = ThreadPoolExecutor(max_workers=2)
    router = Router(
        handle=EngineHandle(engine, metrics=metrics),
        admission=admission,
        executor=executor,
        metrics=metrics,
        db=None,
    )
    yield engine, admission, router
    executor.shutdown(wait=False)


def _dispatch(router, request):
    return asyncio.run(router.dispatch(request))


class TestRouterUnit:
    def test_unknown_route_404(self, router_env):
        _, _, router = router_env
        assert _dispatch(router, Request("GET", "/nope")).status == 404

    def test_wrong_method_405(self, router_env):
        _, _, router = router_env
        assert _dispatch(router, Request("GET", "/batch")).status == 405
        assert _dispatch(router, Request("PUT", "/search")).status == 405

    def test_missing_query_400(self, router_env):
        _, _, router = router_env
        response = _dispatch(router, Request("GET", "/search"))
        assert response.status == 400 and "q" in response.payload["error"]

    def test_bad_k_and_method_400(self, router_env):
        _, _, router = router_env
        assert _dispatch(
            router, Request("GET", "/search", {"q": "x", "k": "zero"})
        ).status == 400
        assert _dispatch(
            router, Request("GET", "/search", {"q": "x", "method": "quantum"})
        ).status == 400

    def test_search_passes_budget(self, router_env):
        engine, _, router = router_env
        response = _dispatch(
            router, Request("GET", "/search", {"q": "hello", "k": "3"})
        )
        assert response.status == 200
        call = engine.calls[-1]
        assert call["k"] == 3 and call["budget"] is not None
        assert response.payload["admission"]["mode"] == MODE_FULL
        assert response.payload["generation"] == 1

    def test_fallback_mode_forces_fallback(self, router_env):
        engine, admission, router = router_env
        admission.enqueued()
        admission.enqueued()  # capacity 4 -> pressure 0.5
        response = _dispatch(router, Request("GET", "/search", {"q": "hi"}))
        assert response.payload["admission"]["mode"] == MODE_FALLBACK
        assert engine.calls[-1]["fallback"] is True

    def test_index_only_mode_pins_method(self, router_env):
        engine, admission, router = router_env
        # Latency signal: EWMA at 1.8x target -> pressure 0.9.
        admission.latency.observe(admission.target_latency_ms * 1.8)
        response = _dispatch(
            router, Request("GET", "/search", {"q": "hi", "method": "steiner"})
        )
        assert response.payload["admission"]["mode"] == MODE_INDEX_ONLY
        assert engine.calls[-1]["method"] == "index_only"

    def test_shed_returns_429_with_retry_after(self, router_env):
        _, admission, router = router_env
        for _ in range(4):
            admission.enqueued()
        response = _dispatch(router, Request("GET", "/search", {"q": "hi"}))
        assert response.status == 429
        assert response.headers["Retry-After"]
        assert response.payload["retry_after_s"] > 0

    def test_disconnected_request_is_499(self, router_env):
        engine, _, router = router_env
        request = Request("GET", "/search", {"q": "hi"})
        request.cancel()
        response = _dispatch(router, request)
        assert response.status == 499
        assert engine.calls == []  # never reached the engine

    def test_disconnected_batch_is_499(self, router_env):
        engine, _, router = router_env
        request = Request("POST", "/batch", body={"queries": ["hi", "ho"]})
        request.cancel()
        response = _dispatch(router, request)
        assert response.status == 499
        assert engine.calls == []  # never reached the engine


# ----------------------------------------------------------------------
# End-to-end over HTTP
# ----------------------------------------------------------------------
def _http(base, path, method="GET", body=None, timeout=10):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path,
        method=method,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture(scope="module")
def http_server():
    db = tiny_bibliographic_db()
    engine = KeywordSearchEngine(db)
    server = ServingServer(
        engine,
        port=0,
        max_concurrency=4,
        max_queue_depth=8,
        engine_builder=lambda: KeywordSearchEngine(db),
    )
    server.start_in_thread()
    yield server
    server.stop()


class TestHttpEndToEnd:
    def test_health_and_ready(self, http_server):
        status, payload, _ = _http(http_server.address, "/health")
        assert status == 200 and payload["status"] == "alive"
        status, payload, _ = _http(http_server.address, "/ready")
        assert status == 200 and payload["status"] == "ready"

    def test_search_returns_scored_results(self, http_server):
        status, payload, _ = _http(
            http_server.address, "/search?q=keyword+search&k=3"
        )
        assert status == 200 and payload["ok"]
        assert payload["count"] >= 1
        assert payload["results"][0]["score"] > 0
        assert payload["admission"]["mode"] == MODE_FULL

    def test_post_search_and_batch(self, http_server):
        status, payload, _ = _http(
            http_server.address, "/search", "POST",
            {"q": "databases", "k": 2, "method": "schema"},
        )
        assert status == 200 and payload["ok"]
        status, payload, _ = _http(
            http_server.address, "/batch", "POST",
            {"queries": ["keyword search", "databases"], "k": 2},
        )
        assert status == 200 and payload["count"] == 2
        assert all(r["status"] in ("ok", "degraded") for r in payload["results"])

    def test_metrics_exposes_serving_counters(self, http_server):
        _http(http_server.address, "/search?q=databases")
        status, payload, _ = _http(http_server.address, "/metrics")
        snap = payload["metrics"]
        assert status == 200
        assert snap["serve.requests"] >= 1
        assert snap["swap.generation"] >= 1
        assert "serve.pressure" in snap

    def test_error_statuses(self, http_server):
        assert _http(http_server.address, "/nope")[0] == 404
        assert _http(http_server.address, "/batch")[0] == 405
        assert _http(http_server.address, "/search")[0] == 400
        status, payload, _ = _http(
            http_server.address, "/search?q=x&method=quantum"
        )
        assert status == 400 and "quantum" in payload["error"]

    def test_insert_then_search(self, http_server):
        status, payload, _ = _http(
            http_server.address, "/insert", "POST",
            {"table": "author",
             "values": {"aid": 901, "name": "zebediah serversmith"}},
        )
        assert status == 200 and payload["ok"]
        status, payload, _ = _http(
            http_server.address, "/search?q=zebediah"
        )
        assert status == 200 and payload["count"] >= 1

    def test_insert_validation_400(self, http_server):
        status, _, _ = _http(
            http_server.address, "/insert", "POST",
            {"table": "author", "values": {"aid": "not an int"}},
        )
        assert status == 400

    def test_swap_bumps_generation(self, http_server):
        before = _http(http_server.address, "/health")[1]["generation"]
        status, payload, _ = _http(
            http_server.address, "/admin/swap", "POST", {"source": "rebuild"}
        )
        assert status == 200 and payload["drained"]
        assert payload["generation"] == before + 1
        status, payload, _ = _http(http_server.address, "/search?q=databases")
        assert status == 200 and payload["generation"] == before + 1

    def test_swap_failpoint_fails_closed(self, http_server):
        before = _http(http_server.address, "/health")[1]["generation"]
        FAILPOINTS.activate("serve.swap", exc=RuntimeError("chaos"), times=1)
        status, payload, _ = _http(
            http_server.address, "/admin/swap", "POST", {"source": "rebuild"}
        )
        assert status == 500 and not payload["ok"]
        after = _http(http_server.address, "/health")[1]
        assert after["generation"] == before
        assert _http(http_server.address, "/ready")[0] == 200

    def test_admit_failpoint_is_scoped_by_tenant(self, http_server):
        FAILPOINTS.activate(
            "serve.admit", exc=RuntimeError("chaos"), key="victim"
        )
        try:
            status, _, _ = _http(
                http_server.address, "/search?q=databases&tenant=victim"
            )
            assert status == 500
            status, _, _ = _http(http_server.address, "/search?q=databases")
            assert status == 200
        finally:
            FAILPOINTS.deactivate("serve.admit")

    def test_queries_in_flight_survive_swap(self, http_server):
        """Mid-flight swap: zero failed, zero torn responses."""
        FAILPOINTS.activate(
            "engine.search", exc=None, delay=0.25, key="slow swap probe"
        )
        try:
            outcomes = []

            def query():
                outcomes.append(
                    _http(http_server.address,
                          "/search?q=slow+swap+probe&timeout_ms=10000")
                )

            threads = [threading.Thread(target=query) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.05)  # let the queries pin the old generation
            status, swap_payload, _ = _http(
                http_server.address, "/admin/swap", "POST",
                {"source": "rebuild"},
            )
            for t in threads:
                t.join(15.0)
            assert status == 200 and swap_payload["drained"]
            assert len(outcomes) == 3
            for code, payload, _ in outcomes:
                assert code == 200 and payload["ok"]
                # Pinned to the pre-swap generation, start to finish.
                assert payload["generation"] == swap_payload["previous_generation"]
        finally:
            FAILPOINTS.deactivate("engine.search")

    def test_client_disconnect_cancels_request(self, http_server):
        FAILPOINTS.activate(
            "engine.search", exc=None, delay=0.4, key="sleepy disconnect"
        )
        try:
            before = _http(http_server.address, "/metrics")[1]["metrics"].get(
                "serve.disconnects", 0
            )
            sock = socket.create_connection(
                (http_server.host, http_server.port), timeout=5
            )
            sock.sendall(
                b"GET /search?q=sleepy+disconnect&timeout_ms=10000 HTTP/1.1\r\n"
                b"Host: x\r\n\r\n"
            )
            time.sleep(0.1)  # request reaches the worker
            sock.close()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                now = _http(http_server.address, "/metrics")[1]["metrics"].get(
                    "serve.disconnects", 0
                )
                if now > before:
                    break
                time.sleep(0.05)
            assert now > before
        finally:
            FAILPOINTS.deactivate("engine.search")


class TestSwapDrainOutsideMutationLock:
    def test_insert_not_stalled_by_swap_drain(self):
        """The drain runs outside the mutation lock.

        A slow query pinned to the old generation makes the swap's
        drain wait, but inserts (and other mutations) must keep
        flowing the moment the new generation is flipped in.  Own
        server: the 2s pinned query would poison the shared fixture's
        latency EWMA for every later test.
        """
        db = tiny_bibliographic_db()
        server = ServingServer(
            KeywordSearchEngine(db),
            port=0,
            max_concurrency=4,
            engine_builder=lambda live_db: KeywordSearchEngine(live_db),
        )
        server.start_in_thread()
        FAILPOINTS.activate(
            "engine.search", exc=None, delay=2.0, key="drain pin probe"
        )
        try:
            t_query = threading.Thread(
                target=lambda: _http(
                    server.address,
                    "/search?q=drain+pin+probe&timeout_ms=15000",
                )
            )
            t_query.start()
            time.sleep(0.2)  # the query pins the current generation
            swap_outcome = {}

            def swapper():
                swap_outcome["r"] = _http(
                    server.address, "/admin/swap", "POST",
                    {"source": "rebuild"},
                )

            t_swap = threading.Thread(target=swapper)
            t_swap.start()
            time.sleep(0.3)  # the swap has flipped and is now draining
            t0 = time.perf_counter()
            status, payload, _ = _http(
                server.address, "/insert", "POST",
                {"table": "author",
                 "values": {"aid": 77_001, "name": "drainproof writer"}},
            )
            insert_s = time.perf_counter() - t0
            swap_still_draining = t_swap.is_alive()
            t_query.join(20.0)
            t_swap.join(20.0)
            assert status == 200 and payload["ok"]
            assert swap_still_draining, "the swap should still be draining"
            assert insert_s < 1.0, f"insert stalled {insert_s:.2f}s behind drain"
            code, swap_payload, _ = swap_outcome["r"]
            assert code == 200 and swap_payload["drained"]
        finally:
            FAILPOINTS.deactivate("engine.search")
            server.stop()


class TestRateLimitOverHttp:
    def test_429_carries_retry_after_header(self):
        db = tiny_bibliographic_db()
        server = ServingServer(
            KeywordSearchEngine(db), port=0,
            tenant_rate=1.0, tenant_burst=1.0,
        )
        server.start_in_thread()
        try:
            assert _http(server.address, "/search?q=databases")[0] == 200
            status, payload, headers = _http(
                server.address, "/search?q=databases"
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert payload["retry_after_s"] > 0
            assert "rate limit" in payload["reason"]
        finally:
            server.stop()


class TestGracefulShutdown:
    def test_stop_drains_inflight_requests(self):
        db = tiny_bibliographic_db()
        server = ServingServer(
            KeywordSearchEngine(db), port=0, drain_timeout_s=5.0
        )
        server.start_in_thread()
        FAILPOINTS.activate(
            "engine.search", exc=None, delay=0.4, key="slow shutdown probe"
        )
        outcome = {}

        def slow_query():
            outcome["response"] = _http(
                server.address, "/search?q=slow+shutdown+probe&timeout_ms=10000"
            )

        try:
            t = threading.Thread(target=slow_query)
            t.start()
            time.sleep(0.1)  # the query is on a worker thread now
            drained = server.stop()
            t.join(10.0)
            assert drained, "drain deadline must not be hit"
            code, payload, _ = outcome["response"]
            assert code == 200 and payload["ok"]
        finally:
            FAILPOINTS.deactivate("engine.search")
