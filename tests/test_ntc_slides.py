"""NTC total-correlation tests reproducing slides 42-43 verbatim."""

import pytest

from repro.xml_search.ntc import (
    entropy,
    joint_entropy,
    normalized_total_correlation,
    rank_structures,
    total_correlation,
)

# Slide 42's author-paper joint sample: six equally likely (A, P) links;
# authors A1..A4 appear once, A5 twice; papers P3 and P4 twice.
AUTHOR_PAPER = [
    ("A1", "P1"),
    ("A2", "P2"),
    ("A3", "P3"),
    ("A4", "P4"),
    ("A5", "P3"),
    ("A5", "P4"),
]

# Slide 43's editor-paper sample: two equally likely (E, P) links with
# perfectly correlated values.
EDITOR_PAPER = [
    ("E1", "P1"),
    ("E2", "P2"),
]


class TestSlide42:
    def test_author_marginal_entropy(self):
        authors = [a for a, _ in AUTHOR_PAPER]
        assert entropy(authors) == pytest.approx(2.25, abs=0.01)

    def test_paper_marginal_entropy(self):
        papers = [p for _, p in AUTHOR_PAPER]
        assert entropy(papers) == pytest.approx(1.92, abs=0.01)

    def test_joint_entropy(self):
        assert joint_entropy(AUTHOR_PAPER) == pytest.approx(2.58, abs=0.01)

    def test_total_correlation_159(self):
        """Slide 42: I(A, P) = 2.25 + 1.92 - 2.58 = 1.59."""
        assert total_correlation(AUTHOR_PAPER) == pytest.approx(1.59, abs=0.01)


class TestSlide43:
    def test_editor_entropies(self):
        assert entropy([e for e, _ in EDITOR_PAPER]) == pytest.approx(1.0)
        assert entropy([p for _, p in EDITOR_PAPER]) == pytest.approx(1.0)
        assert joint_entropy(EDITOR_PAPER) == pytest.approx(1.0)

    def test_total_correlation_10(self):
        """Slide 43: I(E, P) = 1.0 + 1.0 - 1.0 = 1.0."""
        assert total_correlation(EDITOR_PAPER) == pytest.approx(1.0)

    def test_editor_structure_more_cohesive(self):
        """Editor-paper is perfectly correlated (knowing one determines
        the other); normalised I* ranks it above author-paper."""
        istar_editor = normalized_total_correlation(EDITOR_PAPER)
        istar_author = normalized_total_correlation(AUTHOR_PAPER)
        assert istar_editor > istar_author

    def test_rank_structures(self):
        ranked = rank_structures(
            {"author-paper": AUTHOR_PAPER, "editor-paper": EDITOR_PAPER}
        )
        assert ranked[0][0] == "editor-paper"


class TestNtcProperties:
    def test_independent_variables_near_zero(self):
        """Slide 42: I(P) ~= 0 means statistically completely unrelated."""
        rows = [(a, p) for a in "AB" for p in "XY"]  # full product
        assert total_correlation(rows) == pytest.approx(0.0, abs=1e-9)

    def test_empty_and_unary(self):
        assert total_correlation([]) == 0.0
        assert normalized_total_correlation([("x",)]) == 0.0

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            total_correlation([("a", "b"), ("c",)])

    def test_nonnegative(self):
        import random

        rng = random.Random(5)
        for _ in range(20):
            rows = [
                (rng.randrange(3), rng.randrange(3), rng.randrange(2))
                for _ in range(12)
            ]
            assert total_correlation(rows) >= -1e-9
