"""Mutation races: inserts vs snapshots, inserts vs generation swaps.

These tests pin down the two consistency guarantees the serving layer
makes about concurrent mutation:

* a snapshot taken *during* concurrent inserts is a **consistent
  cut** — its rows and its covered LSN describe the same instant, so
  recovery never replays a WAL record on top of an already-snapshotted
  row (duplicate primary key), and the recovered database is
  byte-identical to a quiesced engine with the same rows;
* a generation built *during* concurrent inserts (``/admin/swap``) is
  never torn — every insert acknowledged before the swap response is
  searchable afterwards, and no request observes a half-built engine.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.durability import DurableEngine
from repro.durability.snapshot import SnapshotStore
from repro.serving.server import ServingServer

N_WRITERS = 3
ROWS_PER_WRITER = 25


def _insert_rows(durable, writer_id, errors):
    for i in range(ROWS_PER_WRITER):
        aid = 10_000 + writer_id * 1000 + i
        try:
            durable.insert("author", aid=aid, name=f"writer{writer_id} row{i}")
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)


class TestSnapshotMutationRace:
    def test_concurrent_snapshots_recover_cleanly(self, tmp_path):
        """Inserts racing snapshot(): recovery must not double-replay."""
        durable = DurableEngine(
            KeywordSearchEngine(tiny_bibliographic_db()),
            str(tmp_path / "d"),
            fsync="never",
        )
        errors: list = []
        stop = threading.Event()

        def snapshotter():
            while not stop.is_set():
                try:
                    durable.snapshot()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        writers = [
            threading.Thread(target=_insert_rows, args=(durable, w, errors))
            for w in range(N_WRITERS)
        ]
        snap = threading.Thread(target=snapshotter)
        snap.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join(30.0)
        stop.set()
        snap.join(30.0)
        assert errors == []
        expected = durable.db.size()
        durable.snapshot()
        durable.close()

        recovered, result = DurableEngine.recover(str(tmp_path / "d"))
        assert recovered.db.size() == expected
        assert recovered.db.validate() == []
        report = recovered.fsck()
        assert report.ok, report.problems
        recovered.close()

    def test_snapshot_matches_quiesced_engine_byte_for_byte(self, tmp_path):
        """The cut taken under load == the cut of the quiesced engine."""
        durable = DurableEngine(
            KeywordSearchEngine(tiny_bibliographic_db()),
            str(tmp_path / "d"),
            fsync="never",
        )
        errors: list = []
        infos: list = []

        def snapshotter():
            for _ in range(10):
                infos.append(durable.snapshot())

        writers = [
            threading.Thread(target=_insert_rows, args=(durable, w, errors))
            for w in range(N_WRITERS)
        ]
        snap = threading.Thread(target=snapshotter)
        for t in writers + [snap]:
            t.start()
        for t in writers + [snap]:
            t.join(30.0)
        assert errors == []
        durable.close()

        # Recover (newest snapshot + WAL suffix), then re-cut both the
        # recovered and the live database at the same LSN: identical
        # bytes mean the under-load snapshot was a consistent cut.
        recovered, _ = DurableEngine.recover(str(tmp_path / "d"))
        quiesced = SnapshotStore(str(tmp_path / "quiesced")).write(
            durable.db, lsn=999
        )
        replayed = SnapshotStore(str(tmp_path / "replayed")).write(
            recovered.db, lsn=999
        )
        assert replayed.sha256 == quiesced.sha256
        recovered.close()


def _http(base, path, method="GET", body=None, timeout=15):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path,
        method=method,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestSwapMutationRace:
    @pytest.mark.parametrize("source", ["rebuild", "recover"])
    def test_inserts_racing_swaps_lose_nothing(self, tmp_path, source):
        """/insert racing /admin/swap: no 5xx, no lost acknowledged row."""
        db = tiny_bibliographic_db()
        server = ServingServer(
            KeywordSearchEngine(db),
            port=0,
            durable_dir=str(tmp_path / "d"),
            engine_builder=lambda live_db: KeywordSearchEngine(live_db),
        )
        server.start_in_thread()
        inserted: list = []
        failures: list = []

        def writer():
            for i in range(20):
                aid = 20_000 + i
                status, payload = _http(
                    server.address, "/insert", "POST",
                    {"table": "author",
                     "values": {"aid": aid, "name": f"racer row{i}"}},
                )
                if status == 200:
                    inserted.append(aid)
                else:
                    failures.append((status, payload))

        def swapper():
            for _ in range(4):
                status, payload = _http(
                    server.address, "/admin/swap", "POST", {"source": source}
                )
                if status != 200 or not payload.get("drained"):
                    failures.append((status, payload))

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=swapper)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            assert failures == []
            assert len(inserted) == 20
            # Every acknowledged insert is searchable on the final
            # generation: the swap never built from a torn database.
            status, payload = _http(server.address, "/search?q=racer&k=30")
            assert status == 200
            assert payload["count"] >= len(inserted)
            status, payload = _http(server.address, "/health")
            assert payload["generation"] >= 5
        finally:
            drained = server.stop()
        assert drained

    def test_rebuild_after_recover_keeps_acknowledged_inserts(self, tmp_path):
        """recover swap, insert, rebuild swap: the insert must survive.

        A ``recover`` swap re-points the live database at a new object
        rebuilt from snapshot + WAL.  A later ``rebuild`` swap must
        build from *that* database — a builder capturing the boot-time
        database would silently drop every acknowledged post-recovery
        insert from the new generation (and a later snapshot would
        prune their WAL records, losing them permanently).
        """
        db = tiny_bibliographic_db()
        server = ServingServer(
            KeywordSearchEngine(db),
            port=0,
            durable_dir=str(tmp_path / "d"),
            engine_builder=lambda live_db: KeywordSearchEngine(live_db),
        )
        server.start_in_thread()
        try:
            status, payload = _http(
                server.address, "/admin/swap", "POST", {"source": "recover"}
            )
            assert status == 200 and payload["drained"]
            status, payload = _http(
                server.address, "/insert", "POST",
                {"table": "author",
                 "values": {"aid": 31_337, "name": "postrecovery keeper"}},
            )
            assert status == 200 and payload["ok"]
            status, payload = _http(
                server.address, "/admin/swap", "POST", {"source": "rebuild"}
            )
            assert status == 200 and payload["drained"]
            status, payload = _http(
                server.address, "/search?q=postrecovery&k=5"
            )
            assert status == 200 and payload["count"] >= 1
        finally:
            drained = server.stop()
        assert drained
