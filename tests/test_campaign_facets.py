"""Tests for the evaluation campaign runner, numeric facets, and the
extended engine search methods."""

import pytest

from repro import KeywordSearchEngine
from repro.analysis.facets import (
    NavigationModel,
    build_navigation_tree,
    navigation_cost,
    numeric_facet_conditions,
)
from repro.datasets.logs import QueryLogEntry, generate_query_log
from repro.datasets.products import generate_product_db
from repro.datasets.xml_corpora import generate_bib_xml
from repro.eval.campaign import (
    CampaignReport,
    Topic,
    evaluate_topic,
    leaderboard_rows,
    run_campaign,
)
from repro.xml_search.slca import lca_candidates, slca_indexed_lookup_eager
from repro.xml_search.xrank import rank_results
from repro.xmltree.index import XmlKeywordIndex


class TestCampaign:
    @pytest.fixture(scope="class")
    def document(self):
        return generate_bib_xml(n_confs=4, papers_per_conf=6, seed=5)

    @pytest.fixture(scope="class")
    def topics(self, document):
        index = XmlKeywordIndex(document)
        topics = []
        for i, keywords in enumerate((["xml", "search"], ["paper", "john"])):
            lists = index.match_lists(keywords)
            if any(not l for l in lists):
                continue
            candidates = lca_candidates(lists)
            relevance = {}
            for dewey in candidates:
                node = document.node_at(dewey)
                relevance[dewey] = 1.0 if node is not None and node.tag == "paper" else 0.0
            topics.append(Topic(f"T{i}", tuple(keywords), relevance))
        return topics

    def _engines(self):
        def slca_engine(doc, keywords):
            index = XmlKeywordIndex(doc)
            lists = index.match_lists(keywords)
            if any(not l for l in lists):
                return []
            results = slca_indexed_lookup_eager(lists)
            return [r for r, _ in rank_results(index, results, keywords)]

        def all_lca_engine(doc, keywords):
            index = XmlKeywordIndex(doc)
            lists = index.match_lists(keywords)
            if any(not l for l in lists):
                return []
            return lca_candidates(lists)

        return {"slca+xrank": slca_engine, "all-lca-docorder": all_lca_engine}

    def test_run_campaign_leaderboard(self, document, topics):
        assert topics
        reports = run_campaign(self._engines(), document, topics)
        assert len(reports) == 2
        agps = [r.mean_agp for r in reports]
        assert agps == sorted(agps, reverse=True)
        rows = leaderboard_rows(reports)
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)

    def test_evaluate_topic_bounds(self, document, topics):
        engine = self._engines()["slca+xrank"]
        result = evaluate_topic(engine, document, topics[0])
        assert 0.0 <= result.agp <= 1.0
        for gp in result.gp_at.values():
            assert 0.0 <= gp <= 1.0

    def test_empty_report(self):
        report = CampaignReport("none", [])
        assert report.mean_agp == 0.0
        assert report.mean_gp_at(5) == 0.0


class TestNumericFacets:
    @pytest.fixture(scope="class")
    def setup(self):
        db = generate_product_db(n_products=120, seed=13)
        rows = list(db.rows("product"))
        log = generate_query_log(
            db, "product", n_queries=100,
            attributes=["brand", "price", "screen_size"], seed=23,
        )
        return rows, NavigationModel(log)

    def test_numeric_conditions_cover_range(self, setup):
        rows, model = setup
        conditions = numeric_facet_conditions(rows, "price", model)
        assert conditions
        prices = [r["price"] for r in rows]
        assert conditions[0][0] == pytest.approx(min(prices))
        assert conditions[-1][1] >= max(prices)

    def test_tree_with_numeric_facet(self, setup):
        rows, model = setup
        tree = build_navigation_tree(rows, ["price", "brand"], model)
        assert tree.facet is not None
        covered = sum(child.size() for child in tree.children)
        # numeric buckets partition all rows with non-null values
        non_null = sum(
            1 for r in rows if r[tree.facet] is not None
        )
        assert covered == non_null
        assert navigation_cost(tree, model) <= len(rows)

    def test_range_relevance_overlap(self):
        log = [QueryLogEntry(("x",), (("price", (100.0, 300.0)),))]
        model = NavigationModel(log)
        assert model.p_relevant("price", (200.0, 400.0)) == 1.0
        assert model.p_relevant("price", (500.0, 600.0)) == 0.0


class TestEngineExtraMethods:
    @pytest.fixture(scope="class")
    def engine(self, tiny_db):
        return KeywordSearchEngine(tiny_db)

    def test_distinct_root_method(self, engine):
        results = engine.search("widom xml", method="distinct_root", k=3)
        assert results
        assert results[0].network.startswith("distinct-root")
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_ease_method(self, engine):
        results = engine.search("widom xml", method="ease", k=3)
        assert results
        assert results[0].network.startswith("ease")

    def test_methods_cover_keywords(self, engine, tiny_index):
        for method in ("distinct_root", "ease"):
            results = engine.search("widom xml", method=method, k=2)
            for result in results:
                texts = " ".join(
                    row.text() for row in result.joined.distinct_rows()
                )
                assert "widom" in texts
                assert "xml" in texts
