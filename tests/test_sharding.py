"""Sharded scatter-gather engine: partitioning, parity, resilience."""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.datasets.products import generate_product_db
from repro.relational.database import TupleId
from repro.resilience.failpoints import FAILPOINTS
from repro.sharding import (
    HashPartitioner,
    SchemaAffinityPartitioner,
    ShardedSearchEngine,
    build_shards,
    make_partitioner,
)


def _signature(results):
    """Byte-comparable view of a result list."""
    return [(r.score, r.network, r.tuple_ids()) for r in results]


@pytest.fixture(scope="module")
def biblio_db():
    return generate_bibliographic_db(
        n_authors=20, n_conferences=4, n_papers=40, seed=7
    )


@pytest.fixture(scope="module")
def products_db():
    return generate_product_db(n_products=60, seed=13)


@pytest.fixture(scope="module")
def biblio_single(biblio_db):
    return KeywordSearchEngine(biblio_db)


@pytest.fixture(scope="module")
def biblio_sharded(biblio_db):
    engines = {
        n: ShardedSearchEngine(biblio_db, n_shards=n, partitioner="affinity")
        for n in (1, 2, 4, 8)
    }
    yield engines
    for engine in engines.values():
        engine.close()


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_hash_assignment_deterministic(self, biblio_db):
        a = HashPartitioner(4).assign(biblio_db)
        b = HashPartitioner(4).assign(biblio_db)
        assert a == b
        assert set(a.values()) <= set(range(4))
        assert len(a) == biblio_db.size()

    def test_hash_roughly_balanced(self, biblio_db):
        homes = HashPartitioner(4).assign(biblio_db)
        sizes = [list(homes.values()).count(i) for i in range(4)]
        assert min(sizes) > 0
        assert max(sizes) / min(sizes) < 2.5

    def test_affinity_coresidency(self, biblio_db):
        """A paper and all its write/cite rows share a shard."""
        homes = SchemaAffinityPartitioner(4).assign(biblio_db)
        for table in ("write", "cite"):
            for row in biblio_db.rows(table):
                tid = TupleId(table, row.rowid)
                parents = biblio_db.references_of(row)
                assert parents
                parent_homes = {
                    homes[TupleId(p.table.name, p.rowid)] for p, _ in parents
                }
                # The routing FK's parent is among the referenced rows.
                assert homes[tid] in parent_homes

    def test_affinity_cuts_fewer_edges_than_hash(self, biblio_db):
        hash_set = build_shards(biblio_db, HashPartitioner(4))
        affinity_set = build_shards(biblio_db, SchemaAffinityPartitioner(4))
        assert affinity_set.cut_edges < hash_set.cut_edges
        assert affinity_set.total_edges == hash_set.total_edges

    def test_assign_one_matches_bulk_assignment(self, biblio_db):
        for partitioner in (HashPartitioner(4), SchemaAffinityPartitioner(4)):
            homes = partitioner.assign(biblio_db)
            probe = dict(homes)
            for tid in list(homes)[:25]:
                assert (
                    partitioner.assign_one(biblio_db, tid, probe) == homes[tid]
                )

    def test_boundary_replicas_cover_cut_edges(self, biblio_db):
        shard_set = build_shards(biblio_db, HashPartitioner(4))
        for shard in shard_set:
            for tid in shard.home:
                row = biblio_db.row(tid)
                for parent, _ in biblio_db.references_of(row):
                    parent_tid = TupleId(parent.table.name, parent.rowid)
                    # Radius-1 rule: the FK parent of every home tuple is
                    # present locally, home or replica.
                    assert shard.contains(parent_tid)

    def test_make_partitioner(self):
        assert make_partitioner("hash", 2).name == "hash"
        assert make_partitioner("affinity", 2).name == "affinity"
        custom = HashPartitioner(3)
        assert make_partitioner(custom, 99) is custom
        with pytest.raises(ValueError):
            make_partitioner("round-robin", 2)

    def test_partition_tokens_distinct(self):
        assert HashPartitioner(4).token != HashPartitioner(8).token
        assert HashPartitioner(4).token != SchemaAffinityPartitioner(4).token


# ----------------------------------------------------------------------
# Top-k parity with the single engine (the tentpole invariant)
# ----------------------------------------------------------------------
BIBLIO_QUERIES = ["database keyword search", "john conference", "query xml"]
PRODUCT_QUERIES = ["lenovo laptop", "light small", "ibm"]


class TestParity:
    @pytest.mark.parametrize("method", ["schema", "index_only", "banks"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_biblio_parity(
        self, biblio_single, biblio_sharded, method, n_shards
    ):
        for query in BIBLIO_QUERIES:
            exact = biblio_single.search(query, k=10, method=method)
            got = biblio_sharded[n_shards].search(
                query, k=10, method=method, use_cache=False
            )
            assert _signature(got) == _signature(exact)
            assert not got.degraded

    @pytest.mark.parametrize("method", ["banks2", "distinct_root"])
    def test_biblio_parity_routed(self, biblio_single, biblio_sharded, method):
        for query in BIBLIO_QUERIES[:2]:
            exact = biblio_single.search(query, k=10, method=method)
            got = biblio_sharded[4].search(
                query, k=10, method=method, use_cache=False
            )
            assert _signature(got) == _signature(exact)

    @pytest.mark.parametrize("method", ["schema", "index_only", "banks"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("partitioner", ["hash", "affinity"])
    def test_products_parity(self, products_db, method, n_shards, partitioner):
        single = KeywordSearchEngine(products_db)
        with ShardedSearchEngine(
            products_db, n_shards=n_shards, partitioner=partitioner
        ) as sharded:
            for query in PRODUCT_QUERIES:
                exact = single.search(query, k=10, method=method)
                got = sharded.search(query, k=10, method=method, use_cache=False)
                assert _signature(got) == _signature(exact)

    @pytest.mark.parametrize("method", ["steiner", "ease"])
    def test_tiny_parity_expensive_methods(self, method):
        db = tiny_bibliographic_db()
        single = KeywordSearchEngine(db)
        with ShardedSearchEngine(db, n_shards=2) as sharded:
            exact = single.search("widom database", k=3, method=method)
            got = sharded.search(
                "widom database", k=3, method=method, use_cache=False
            )
            assert _signature(got) == _signature(exact)

    def test_hash_partitioner_parity_biblio(self, biblio_db, biblio_single):
        with ShardedSearchEngine(
            biblio_db, n_shards=4, partitioner="hash"
        ) as sharded:
            for query in BIBLIO_QUERIES:
                exact = biblio_single.search(query, k=10, method="schema")
                got = sharded.search(query, k=10, use_cache=False)
                assert _signature(got) == _signature(exact)

    def test_empty_query_and_unknown_method(self, biblio_sharded):
        from repro.resilience.errors import QueryParseError

        assert biblio_sharded[4].search("", k=5) == []
        with pytest.raises(QueryParseError):
            biblio_sharded[4].search("database", method="quantum")


# ----------------------------------------------------------------------
# Upper-bound pruning
# ----------------------------------------------------------------------
class TestPruning:
    def test_threshold_prunes_candidates(self, biblio_db, biblio_single):
        """Shards skip anchor slots via the global k-th threshold."""
        with ShardedSearchEngine(
            biblio_db, n_shards=4, partitioner="affinity"
        ) as sharded:
            query = "database keyword search"
            got = sharded.search(query, k=3, use_cache=False)
            exact = biblio_single.search(query, k=3)
            assert _signature(got) == _signature(exact)
            snap = sharded.metrics.snapshot()
            assert snap["shard.pruned"] > 0
            # Pruning must actually cut work: the shards together
            # evaluated fewer candidates than they skipped + evaluated.
            assert snap["shard.evaluated"] > 0

    def test_trace_tree_shows_scatter_gather(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4, trace=True) as sharded:
            results = sharded.search("database keyword", k=5, use_cache=False)
            trace = results.trace
            assert trace is not None
            scatter = trace.find("scatter")
            assert scatter is not None
            names = sorted(c.name for c in scatter.children)
            assert names == [f"shard[{i}]" for i in range(4)]
            assert trace.find("gather") is not None
            assert all(
                "pruned" in c.counters or "error" in c.tags
                for c in scatter.children
            )


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
class TestResilience:
    def test_failpoint_killed_shard_degrades(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4, trace=True) as sharded:
            FAILPOINTS.activate(
                "shard.execute", exc=RuntimeError("shard died"), key=2
            )
            try:
                results = sharded.search("database keyword", k=5, use_cache=False)
            finally:
                FAILPOINTS.clear()
            assert results.degraded
            assert "shard 2" in results.degraded_reason
            # The failure is visible in the scatter-gather span tree.
            scatter = results.trace.find("scatter")
            failed = [c for c in scatter.children if c.name == "shard[2]"]
            assert failed and failed[0].tags.get("error") == "RuntimeError"
            # The other shards still contributed results.
            assert len(results) > 0

    def test_circuit_breaker_opens_and_skips(self, biblio_db):
        with ShardedSearchEngine(
            biblio_db, n_shards=4, shard_failure_threshold=2
        ) as sharded:
            FAILPOINTS.activate(
                "shard.execute", exc=RuntimeError("boom"), key=1
            )
            try:
                for _ in range(2):
                    sharded.search("database keyword", k=5, use_cache=False)
            finally:
                FAILPOINTS.clear()
            results = sharded.search("database keyword", k=5, use_cache=False)
            assert results.degraded
            assert "circuit open" in results.degraded_reason
            snap = sharded.metrics.snapshot()
            assert snap["shard.circuit.transitions.open"] >= 1
            assert snap["shard.failures"] >= 2
            assert snap["shard.skipped"] >= 1

    def test_budget_timeout_degrades_not_hangs(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            results = sharded.search(
                "database keyword search", k=5, timeout_ms=0.0001
            )
            assert results.degraded
            assert results.degraded_reason

    def test_routed_method_fails_over(self, biblio_db, biblio_single):
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            FAILPOINTS.activate(
                "shard.execute", exc=RuntimeError("dead slot"), key=0
            )
            try:
                got = sharded.search(
                    "john conference", k=5, method="banks", use_cache=False
                )
            finally:
                FAILPOINTS.clear()
            exact = biblio_single.search("john conference", k=5, method="banks")
            assert _signature(got) == _signature(exact)
            assert got.degraded  # the dead slot is reported

    def test_degraded_results_not_cached(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            FAILPOINTS.activate(
                "shard.execute", exc=RuntimeError("flaky"), key=3, times=1
            )
            try:
                first = sharded.search("database keyword", k=5)
            finally:
                FAILPOINTS.clear()
            assert first.degraded
            second = sharded.search("database keyword", k=5)
            assert not second.degraded

    def test_per_shard_metrics_exposed(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=2) as sharded:
            sharded.search("database keyword", k=5, use_cache=False)
            snap = sharded.metrics.snapshot()
            assert snap["shard.latency_ms"]["count"] == 2
            assert snap["shard.count"] == 2
            assert "shard.pruned" in snap


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestShardedCache:
    def test_cache_key_includes_shard_config(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            key = sharded._query_key("database keyword", "schema", 5)
            assert sharded.shards.token in key

    def test_cache_hit_serves_clone(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=2) as sharded:
            first = sharded.search("database keyword", k=5)
            second = sharded.search("database keyword", k=5)
            assert _signature(first) == _signature(second)
            assert first is not second
            snap = sharded.metrics.snapshot()
            assert snap["shard_query.cache_hits"] == 1


# ----------------------------------------------------------------------
# Incremental maintenance routing
# ----------------------------------------------------------------------
class TestRefreshRouting:
    def test_insert_routes_to_owning_shard_only(self, biblio_db):
        db = generate_bibliographic_db(
            n_authors=20, n_conferences=4, n_papers=40, seed=7
        )
        with ShardedSearchEngine(
            db, n_shards=4, partitioner="affinity"
        ) as sharded:
            sharded.search("database", k=3, use_cache=False)
            before = {
                s.shard_id: (len(s.home), len(s.replicas)) for s in sharded.shards
            }
            tid = db.insert("author", aid=9001, name="zanzibar unique")
            routed = sharded.refresh()
            after = {
                s.shard_id: (len(s.home), len(s.replicas)) for s in sharded.shards
            }
            touched = [i for i in after if after[i] != before[i]]
            # An author row has no FK neighbours: exactly one shard touched.
            assert routed == 1
            assert touched == [sharded.shards.home(tid)]

    def test_search_parity_after_inserts(self):
        db = generate_bibliographic_db(
            n_authors=20, n_conferences=4, n_papers=40, seed=7
        )
        with ShardedSearchEngine(
            db, n_shards=4, partitioner="affinity"
        ) as sharded:
            sharded.search("database", k=3, use_cache=False)
            cid = next(iter(db.rows("conference")))["cid"]
            aid = db.insert("author", aid=9001, name="zanzibar unique")
            pid = db.insert(
                "paper", pid=9002, title="zanzibar databases", cid=cid
            )
            db.insert("write", wid=9003, aid=9001, pid=9002)
            single = KeywordSearchEngine(db)
            got = sharded.search("zanzibar", k=5, use_cache=False)
            exact = single.search("zanzibar", k=5)
            assert _signature(got) == _signature(exact)
            assert len(got) > 0
            # The write row joins author and paper: if they landed on
            # different shards, each got the other as a boundary replica.
            wid_tid = TupleId("write", len(db.tables["write"]) - 1)
            home = sharded.shards.home(wid_tid)
            assert sharded.shards.shards[home].contains(aid)
            assert sharded.shards.shards[home].contains(pid)


# ----------------------------------------------------------------------
# Source-selection routing (repro.distributed.selection via coordinator)
# ----------------------------------------------------------------------
class TestSelectionRouting:
    def test_route_order_prefers_keyword_bearing_shard(self, biblio_db):
        with ShardedSearchEngine(
            biblio_db,
            n_shards=4,
            partitioner="affinity",
            selection_routing=True,
        ) as sharded:
            # A term unique to some rows: find which shards hold it and
            # check the scorer puts one of them first.
            index = sharded.engine.index
            term = None
            for candidate in ("sigmod", "seattle", "xml"):
                if index.matching_tuples(candidate):
                    term = candidate
                    break
            assert term is not None
            holders = {
                shard.shard_id
                for shard in sharded.shards
                for tid in index.matching_tuples(term)
                if shard.contains(tid)
            }
            order = sharded.route_order([term])
            assert len(order) == 4 and sorted(order) == [0, 1, 2, 3]
            assert order[0] in holders

    def test_route_order_unmatched_term_falls_back(self, biblio_db):
        with ShardedSearchEngine(
            biblio_db, n_shards=4, selection_routing=True
        ) as sharded:
            # Nothing matches: no shard ranks, id order is the fallback.
            assert sharded.route_order(["xylophone"]) == [0, 1, 2, 3]

    def test_round_robin_rotates_without_selection(self, biblio_db):
        with ShardedSearchEngine(biblio_db, n_shards=4) as sharded:
            first = sharded.route_order(["database"])
            second = sharded.route_order(["database"])
            assert first != second
            assert sorted(first) == sorted(second) == [0, 1, 2, 3]

    def test_selection_routed_search_parity(self, biblio_db, biblio_single):
        with ShardedSearchEngine(
            biblio_db, n_shards=4, selection_routing=True
        ) as sharded:
            exact = biblio_single.search("john conference", k=5, method="banks")
            got = sharded.search(
                "john conference", k=5, method="banks", use_cache=False
            )
            assert _signature(got) == _signature(exact)

    def test_summaries_score_shards(self, biblio_db):
        """The per-shard DatabaseSummary path exercises selection.py."""
        from repro.distributed.selection import rank_databases

        with ShardedSearchEngine(
            biblio_db, n_shards=4, selection_routing=True
        ) as sharded:
            summaries = sharded._summaries(["database"])
            assert len(summaries) == 4
            assert all(s.name.startswith("shard-") for s in summaries)
            ranked = rank_databases(summaries, ["database"])
            assert ranked
            for summary, score in ranked:
                assert score > 0
                assert summary.coverage(["database"]) == 1.0
