"""Integration tests for the facade engines (the end-to-end pipeline)."""

import pytest

from repro import KeywordSearchEngine, Query, XmlSearchEngine
from repro.datasets.xml_corpora import (
    generate_bib_xml,
    slide_auction_tree,
    slide_conf_tree,
)


class TestQuery:
    def test_parse(self):
        q = Query.parse("Keyword-based Search!")
        assert q.keywords == ("keyword", "based", "search")

    def test_with_keywords_tracks_origin(self):
        q = Query.parse("datbase").with_keywords(["database"])
        assert q.was_cleaned
        assert q.cleaned_from == ("datbase",)

    def test_str(self):
        assert str(Query.parse("a b")) == "a b"


class TestRelationalEngine:
    @pytest.fixture(scope="class")
    def engine(self, tiny_db):
        return KeywordSearchEngine(tiny_db)

    def test_schema_search_end_to_end(self, engine):
        results = engine.search("widom xml", k=5)
        assert results
        top = results[0]
        tables = {t.table for t in top.tuple_ids()}
        assert "author" in tables and "paper" in tables

    def test_scores_descending(self, engine):
        results = engine.search("john sigmod", k=5)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_query_cleaning_in_pipeline(self, engine):
        dirty = engine.search("wydom xml", k=5)
        clean = engine.search("widom xml", k=5)
        assert dirty
        assert {r.network for r in dirty} == {r.network for r in clean}

    def test_banks_method(self, engine):
        results = engine.search("widom xml", method="banks", k=3)
        assert results
        assert results[0].network.startswith("banks-tree")

    def test_steiner_method(self, engine):
        results = engine.search("widom xml", method="steiner")
        assert len(results) == 1
        assert "steiner" in results[0].network

    def test_unknown_method(self, engine):
        with pytest.raises(ValueError):
            engine.search("x", method="bogus")

    def test_empty_query(self, engine):
        assert engine.search("", k=3) == []

    def test_no_match_query(self, engine):
        assert engine.search("qqqqqqq zzzzzzz", k=3) == []

    def test_suggest(self, engine):
        assert "sigmod" in engine.suggest("sig")

    def test_refine_terms(self, engine):
        terms = engine.refine_terms("xml", k=5)
        assert terms
        assert all(t != "xml" for t, _ in terms)

    def test_differentiate(self, engine):
        results = engine.search("john", k=4)
        table = engine.differentiate(results, budget=2)
        assert len(table) == len(results)
        for features in table.values():
            assert len(features) <= 2

    def test_suggest_forms(self, engine):
        ranked = engine.suggest_forms("john xml", k=3)
        assert ranked
        form, score = ranked[0]
        assert score > 0

    def test_result_describe(self, engine):
        results = engine.search("widom xml", k=1)
        text = results[0].describe()
        assert "author" in text or "paper" in text


class TestXmlEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return XmlSearchEngine(slide_conf_tree())

    def test_slca_search(self, engine):
        results = engine.search("keyword mark")
        assert len(results) == 1
        assert results[0].node.tag == "paper"

    def test_elca_superset(self, engine):
        slca = {r.root for r in engine.search("mark sigmod", semantics="slca")}
        elca = {r.root for r in engine.search("mark sigmod", semantics="elca")}
        assert slca <= elca

    def test_multiway_agrees_with_slca(self, engine):
        a = [r.root for r in engine.search("keyword mark", semantics="slca")]
        b = [r.root for r in engine.search("keyword mark", semantics="multiway")]
        assert a == b

    def test_unknown_semantics(self, engine):
        with pytest.raises(ValueError):
            engine.search("x", semantics="bogus")

    def test_missing_keyword(self, engine):
        assert engine.search("mark zebra") == []

    def test_snippet(self, engine):
        result = engine.search("keyword mark")[0]
        items = engine.snippet(result, "keyword mark")
        assert items

    def test_infer_return_type(self, engine):
        ranked = engine.infer_return_type("mark keyword")
        assert ranked
        assert ranked[0][0].endswith("/paper")

    def test_return_nodes(self, engine):
        result = engine.search("keyword mark")[0]
        nodes = engine.return_nodes(result, "keyword mark")
        assert nodes

    def test_cluster_by_type(self):
        tree = generate_bib_xml(n_confs=3, papers_per_conf=4, seed=5)
        engine = XmlSearchEngine(tree)
        results = engine.search("paper")
        clusters = engine.cluster_by_type(results, "paper")
        assert clusters
        paths = [p for p, _, _ in clusters]
        assert len(paths) == len(set(paths))

    def test_cluster_by_role_auctions(self):
        engine = XmlSearchEngine(slide_auction_tree())
        results = engine.search("tom", semantics="slca")
        clusters = engine.cluster_by_role(results, "tom")
        # Tom appears as auctioneer, buyer and seller -> 3 role clusters.
        assert len(clusters) == 3
