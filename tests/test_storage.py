"""Pluggable storage backends: codecs, parity, refresh, disk segments.

The tentpole invariant of the storage layer is *byte-identical results
regardless of substrate*: every backend (dict / columnar / disk) must
expose exactly the same index surface and produce exactly the same
top-k under every search method, standalone or sharded, cold or after
incremental refresh, and across crash recovery.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.datasets.products import generate_product_db
from repro.durability import DurableEngine
from repro.durability.snapshot import SnapshotStore
from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.obs.memory import deep_sizeof
from repro.resilience.errors import QueryParseError
from repro.sharding import ShardedSearchEngine
from repro.storage import BACKEND_NAMES, BACKENDS, create_backend
from repro.storage.base import TokenViewCache, TokenView
from repro.storage.diskstore import (
    DiskBackend,
    SegmentFormatError,
    read_footer,
)
from repro.storage.rowcodec import decode_table, encode_table
from repro.storage.varint import decode_run, decode_uint, encode_run, encode_uint

ALL_BACKENDS = list(BACKEND_NAMES)  # ["columnar", "dict", "disk"]
METHODS = [
    "schema",
    "banks",
    "banks2",
    "steiner",
    "distinct_root",
    "ease",
    "index_only",
]


def _signature(results):
    """Byte-comparable view of a result list."""
    return [(r.score, r.network, r.tuple_ids()) for r in results]


def _backend_options(name, tmp_dir=None):
    if name == "disk" and tmp_dir is not None:
        return {"path": os.path.join(str(tmp_dir), "index.rkws")}
    return None


@pytest.fixture(scope="module")
def biblio_db():
    return generate_bibliographic_db(
        n_authors=20, n_conferences=4, n_papers=40, seed=7
    )


@pytest.fixture(scope="module")
def products_db():
    return generate_product_db(n_products=60, seed=13)


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class TestVarint:
    def test_roundtrip(self):
        values = [0, 1, 127, 128, 255, 300, 2**14, 2**31, 2**63 + 11]
        buf = bytearray()
        for v in values:
            encode_uint(v, buf)
        pos = 0
        for v in values:
            got, pos = decode_uint(bytes(buf), pos)
            assert got == v
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uint(-1, bytearray())

    def test_run_roundtrip(self):
        run = [0, 0, 3, 3, 7, 1000, 1000, 10**9]
        blob = encode_run(run)
        got, pos = decode_run(blob)
        assert got == run
        assert pos == len(blob)

    def test_run_requires_sorted(self):
        with pytest.raises(ValueError):
            encode_run([3, 1])


class TestRowCodec:
    VALUES = [
        [None, 1, -1, 2**70, -(2**70)],
        [3.5, -0.0, 1e300, True, False],
        ["", "plain", "unicode é中文", "x" * 500, None],
    ]

    def test_roundtrip(self):
        data = encode_table(self.VALUES)
        assert isinstance(data, str)
        rows = decode_table(data)
        assert rows == self.VALUES
        # bools survive as bools, not ints
        assert rows[1][3] is True and rows[1][4] is False

    def test_empty(self):
        assert decode_table(encode_table([])) == []

    def test_packed_beats_json_on_repetitive_rows(self):
        import json

        rows = [[i, f"tuple {i % 7}", i % 2 == 0, None] for i in range(300)]
        packed = len(encode_table(rows))
        plain = len(json.dumps(rows, separators=(",", ":")))
        assert packed < plain


class TestDeepSizeof:
    def test_counts_nested_containers(self):
        flat = sys.getsizeof([])
        assert deep_sizeof([[1, 2, 3], {"a": "b" * 100}]) > flat + 100

    def test_shared_objects_counted_once(self):
        shared = "payload" * 100
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_stop_types_excluded(self):
        class Big:
            def __init__(self):
                self.blob = "x" * 10_000

        big = Big()
        with_big = deep_sizeof([big])
        without = deep_sizeof([big], stop=(Big,))
        assert with_big > without + 9_000


# ----------------------------------------------------------------------
# Backend registry / protocol
# ----------------------------------------------------------------------
class TestRegistry:
    def test_names(self):
        assert set(BACKEND_NAMES) == {"dict", "columnar", "disk"}
        assert set(BACKENDS) == set(BACKEND_NAMES)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            create_backend("lsm")

    def test_bad_options(self):
        with pytest.raises(ValueError):
            create_backend("dict", {"page_size": 12})

    def test_engine_rejects_unknown_backend(self, biblio_db):
        with pytest.raises(QueryParseError):
            KeywordSearchEngine(biblio_db, backend="lsm")


class TestTokenViewCache:
    def test_lru_eviction_and_stats(self):
        cache = TokenViewCache(capacity=2)
        views = {
            t: TokenView((), {}) for t in ("a", "b", "c")
        }
        cache.put("a", views["a"])
        cache.put("b", views["b"])
        assert cache.get("a") is views["a"]  # refreshes recency
        cache.put("c", views["c"])  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is views["a"]
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 1


# ----------------------------------------------------------------------
# Full index-surface parity across backends
# ----------------------------------------------------------------------
class TestIndexParity:
    @pytest.mark.parametrize("name", [n for n in ALL_BACKENDS if n != "dict"])
    def test_full_surface_matches_dict(self, biblio_db, name, tmp_path):
        base = InvertedIndex(biblio_db, backend="dict")
        other = InvertedIndex(
            biblio_db, backend=name,
            backend_options=_backend_options(name, tmp_path),
        )
        try:
            assert other.vocabulary == base.vocabulary
            assert other.document_count == base.document_count
            for token in base.vocabulary:
                assert other.document_frequency(token) == base.document_frequency(
                    token
                ), token
                assert other.idf(token) == base.idf(token), token
                assert sorted(other.matching_tuples(token)) == sorted(
                    base.matching_tuples(token)
                ), token
                key = lambda p: (p.tid, p.column, p.frequency)
                assert sorted(other.postings(token), key=key) == sorted(
                    base.postings(token), key=key
                ), token
                for tid in base.matching_tuples(token):
                    assert other.term_frequency(tid, token) == base.term_frequency(
                        tid, token
                    )
                    assert other.contains_token(tid, token)
                    assert sorted(other.tokens_of(tid)) == sorted(
                        base.tokens_of(tid)
                    )
            assert "no-such-token" not in other
            assert other.idf("no-such-token") == base.idf("no-such-token")
        finally:
            other.close()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_refresh_matches_fresh_build(self, name, tmp_path):
        db = tiny_bibliographic_db()
        index = InvertedIndex(
            db, backend=name, backend_options=_backend_options(name, tmp_path)
        )
        try:
            db.insert(
                "author", aid=901, name="grace refresh", affiliation="storage lab"
            )
            db.insert(
                "author", aid=902, name="alan segment", affiliation="page cache"
            )
            index.refresh()
            fresh = InvertedIndex(db, backend="dict")
            assert index.vocabulary == fresh.vocabulary
            assert index.document_count == fresh.document_count
            for token in fresh.vocabulary:
                assert sorted(index.matching_tuples(token)) == sorted(
                    fresh.matching_tuples(token)
                ), token
                assert index.document_frequency(
                    token
                ) == fresh.document_frequency(token)
                for tid in fresh.matching_tuples(token):
                    assert index.term_frequency(
                        tid, token
                    ) == fresh.term_frequency(tid, token)
        finally:
            index.close()


# ----------------------------------------------------------------------
# Search parity: every method, every backend, sharded and unsharded
# ----------------------------------------------------------------------
BIBLIO_QUERIES = ["database keyword search", "john conference"]


@pytest.fixture(scope="module")
def biblio_dict_engine(biblio_db):
    return KeywordSearchEngine(biblio_db)


@pytest.fixture(scope="module")
def biblio_engines(biblio_db, tmp_path_factory):
    engines = {}
    for name in ALL_BACKENDS:
        if name == "dict":
            continue
        options = _backend_options(
            name, tmp_path_factory.mktemp(f"storage-{name}")
        )
        engines[name] = KeywordSearchEngine(
            biblio_db, backend=name, backend_options=options
        )
    yield engines
    for engine in engines.values():
        engine.index.close()


class TestSearchParity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("name", [n for n in ALL_BACKENDS if n != "dict"])
    def test_single_engine_parity(
        self, biblio_dict_engine, biblio_engines, name, method
    ):
        for query in BIBLIO_QUERIES:
            exact = biblio_dict_engine.search(query, k=10, method=method)
            got = biblio_engines[name].search(query, k=10, method=method)
            assert _signature(got) == _signature(exact)

    @pytest.mark.parametrize("name", [n for n in ALL_BACKENDS if n != "dict"])
    def test_sharded_parity(
        self, biblio_db, biblio_dict_engine, name, tmp_path
    ):
        sharded = ShardedSearchEngine(
            biblio_db,
            n_shards=2,
            partitioner="affinity",
            backend=name,
            backend_options=_backend_options(name, tmp_path),
        )
        try:
            for method in ("schema", "index_only", "banks"):
                for query in BIBLIO_QUERIES:
                    exact = biblio_dict_engine.search(query, k=10, method=method)
                    got = sharded.search(query, k=10, method=method)
                    assert _signature(got) == _signature(exact)
        finally:
            sharded.close()

    @pytest.mark.parametrize("name", [n for n in ALL_BACKENDS if n != "dict"])
    def test_products_parity(self, products_db, name, tmp_path):
        base = KeywordSearchEngine(products_db)
        other = KeywordSearchEngine(
            products_db,
            backend=name,
            backend_options=_backend_options(name, tmp_path),
        )
        for method in ("schema", "index_only"):
            for query in ("lenovo laptop", "light small"):
                exact = base.search(query, k=10, method=method)
                got = other.search(query, k=10, method=method)
                assert _signature(got) == _signature(exact)
        other.index.close()


# ----------------------------------------------------------------------
# Durability: crash-recovery and packed snapshots per backend
# ----------------------------------------------------------------------
class TestDurability:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_recovery_parity_and_fsck(self, name, tmp_path):
        root = str(tmp_path / "durable")
        options = _backend_options(name, tmp_path)
        engine = KeywordSearchEngine(
            tiny_bibliographic_db(), backend=name, backend_options=options
        )
        durable = DurableEngine(engine, root)
        durable.insert(
            "author", aid=800, name="wal writer", affiliation="segment files"
        )
        durable.snapshot()
        durable.insert(
            "author", aid=801, name="torn tail", affiliation="page cache"
        )
        reference = [
            _signature(durable.search(q, k=10, method=m))
            for q in ("wal writer", "torn page")
            for m in ("schema", "index_only")
        ]
        durable.close()  # crash point: recovery replays the WAL suffix

        recover_options = dict(options or {})
        if name == "disk":
            # Recover into a fresh segment path: the live backend still
            # holds the original one (recovery must not depend on it).
            recover_options["path"] = str(tmp_path / "recovered.rkws")
        recovered, result = DurableEngine.recover(
            root, backend=name, backend_options=recover_options or None
        )
        assert getattr(recovered.engine, "backend_name", None) == name
        got = [
            _signature(recovered.search(q, k=10, method=m))
            for q in ("wal writer", "torn page")
            for m in ("schema", "index_only")
        ]
        assert got == reference
        assert recovered.fsck().ok
        recovered.close()

    def test_packed_snapshot_codec_selected_by_backend(self, tmp_path):
        engine = KeywordSearchEngine(tiny_bibliographic_db(), backend="columnar")
        durable = DurableEngine(engine, str(tmp_path / "d"))
        assert durable.snapshots.row_codec == "packed"
        durable.close()
        plain = DurableEngine(
            KeywordSearchEngine(tiny_bibliographic_db()), str(tmp_path / "p")
        )
        assert plain.snapshots.row_codec == "json"
        plain.close()

    def test_packed_snapshot_roundtrip_and_size(self, tmp_path):
        db = generate_bibliographic_db(
            n_authors=30, n_conferences=4, n_papers=80, seed=3
        )
        packed_store = SnapshotStore(str(tmp_path / "packed"), row_codec="packed")
        json_store = SnapshotStore(str(tmp_path / "json"), row_codec="json")
        packed_info = packed_store.write(db, lsn=1)
        json_info = json_store.write(db, lsn=1)
        assert os.path.getsize(packed_info.data_path) < os.path.getsize(
            json_info.data_path
        )
        loaded, lsn = packed_store.load(packed_info)
        assert lsn == 1
        for name, table in db.tables.items():
            assert [r.values for r in loaded.table(name).rows()] == [
                r.values for r in table.rows()
            ]

    def test_snapshot_store_rejects_unknown_codec(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(str(tmp_path), row_codec="parquet")


# ----------------------------------------------------------------------
# Disk segments: cold open, reuse, lazy page-in, bounded cache
# ----------------------------------------------------------------------
class TestDiskSegment:
    def test_cold_open_reuses_segment(self, biblio_db, tmp_path):
        path = str(tmp_path / "index.rkws")
        first = DiskBackend(path=path)
        first.build(biblio_db)
        assert first.stats()["reused_segment"] is False
        first.close()
        assert os.path.exists(path)

        second = DiskBackend(path=path)
        second.build(biblio_db)
        assert second.stats()["reused_segment"] is True
        base = create_backend("dict")
        base.build(biblio_db)
        assert second.vocabulary() == base.vocabulary()
        token = base.vocabulary()[0]
        assert sorted(second.matching_view(token)) == sorted(
            base.matching_view(token)
        )
        second.close()

    def test_stamp_mismatch_triggers_rebuild(self, tmp_path):
        path = str(tmp_path / "index.rkws")
        db = tiny_bibliographic_db()
        first = DiskBackend(path=path)
        first.build(db)
        first.close()
        other = generate_product_db(n_products=10, seed=1)
        second = DiskBackend(path=path)
        second.build(other)  # different schema: must rebuild, not reuse
        assert second.stats()["reused_segment"] is False
        assert second.doc_count == other.size()
        second.close()

    def test_page_cache_bounded_and_lazy(self, tmp_path):
        db = generate_bibliographic_db(
            n_authors=40, n_conferences=6, n_papers=150, seed=11
        )
        backend = DiskBackend(
            path=str(tmp_path / "big.rkws"),
            page_size=1024,
            cache_pages=4,
            hot_tokens=8,
        )
        backend.build(db)
        try:
            stats = backend.stats()
            total_pages = stats["segment_pages"]
            assert total_pages > 4  # dataset larger than the page cache
            # Touch many tokens: the cache must stay bounded while
            # pages keep (re-)loading on demand.
            for token in backend.vocabulary()[:60]:
                backend.matching_view(token)
            stats = backend.stats()["page_cache"]
            assert stats["resident_pages"] <= 4
            assert 0 < stats["pages_ever_loaded"] <= total_pages

        finally:
            backend.close()

    def test_cold_open_loads_no_pages(self, biblio_db, tmp_path):
        path = str(tmp_path / "cold.rkws")
        DiskBackend(path=path).build(biblio_db)
        backend = DiskBackend(path=path)
        backend.build(biblio_db)
        try:
            assert backend.stats()["reused_segment"] is True
            assert backend.stats()["page_cache"]["pages_ever_loaded"] == 0
            backend.matching_view(backend.vocabulary()[0])
            assert backend.stats()["page_cache"]["pages_ever_loaded"] > 0
        finally:
            backend.close()

    def test_corrupt_trailer_rejected(self, biblio_db, tmp_path):
        path = str(tmp_path / "corrupt.rkws")
        DiskBackend(path=path).build(biblio_db)
        with open(path, "r+b") as handle:
            handle.seek(-4, os.SEEK_END)
            handle.write(b"XXXX")
        with pytest.raises(SegmentFormatError):
            read_footer(path)
        # build() falls back to a rebuild instead of failing the open.
        backend = DiskBackend(path=path)
        backend.build(biblio_db)
        assert backend.stats()["reused_segment"] is False
        backend.close()


# ----------------------------------------------------------------------
# Satellites: interning, memory gauges, compaction ratio
# ----------------------------------------------------------------------
class TestSatellites:
    def test_tokens_are_interned(self):
        for token in tokenize("Storage SEGMENT storage segment"):
            assert token is sys.intern(token)

    def test_memory_gauges_exported(self, tmp_path):
        engine = KeywordSearchEngine(tiny_bibliographic_db(), backend="columnar")
        engine.search("john", k=5, method="index_only")
        snap = engine.metrics.snapshot()
        assert snap["storage.resident_bytes"] > 0
        assert "substrates.bytes" in snap

    def test_resident_bytes_gauge_does_not_force_index(self):
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        snap = engine.metrics.snapshot()
        assert snap["storage.resident_bytes"] == 0
        assert "index" not in engine.__dict__  # still lazy

    def test_columnar_resident_memory_ratio(self, biblio_db, tmp_path):
        dict_index = InvertedIndex(biblio_db, backend="dict")
        columnar = InvertedIndex(biblio_db, backend="columnar")
        disk = InvertedIndex(
            biblio_db, backend="disk",
            backend_options=_backend_options("disk", tmp_path),
        )
        try:
            base = dict_index.resident_bytes()
            # ISSUE acceptance: compact substrates cut resident index
            # memory by >= 3x on the reference datasets.
            assert base / columnar.resident_bytes() >= 3.0
            assert base / disk.resident_bytes() >= 3.0
        finally:
            disk.close()

    def test_storage_stats_surface(self, biblio_db, tmp_path):
        engine = KeywordSearchEngine(biblio_db, backend="columnar")
        stats = engine.index.storage_stats()
        assert stats["backend"] == "columnar"
        assert stats["documents"] == engine.index.document_count
        assert stats["postings_bytes"] > 0
