"""Tests for the synthetic dataset generators: determinism, referential
integrity, and the shapes the experiments rely on."""

import pytest

from repro.datasets.bibliographic import (
    bibliographic_schema,
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.datasets.events import TUTORIAL_EVENTS, generate_events_db, tutorial_events_db
from repro.datasets.logs import (
    binding_frequencies,
    generate_click_log,
    generate_query_log,
)
from repro.datasets.movies import generate_movie_db
from repro.datasets.products import generate_product_db
from repro.datasets.xml_corpora import (
    generate_auctions_xml,
    generate_bib_xml,
    slide_auction_tree,
    slide_conf_tree,
)
from repro.index.text import tokenize


def _snapshot(db):
    return {
        name: [row.values for row in table.rows()]
        for name, table in db.tables.items()
    }


class TestDeterminism:
    def test_bibliographic_deterministic(self):
        a = generate_bibliographic_db(seed=5)
        b = generate_bibliographic_db(seed=5)
        assert _snapshot(a) == _snapshot(b)

    def test_seed_changes_output(self):
        a = generate_bibliographic_db(seed=5)
        b = generate_bibliographic_db(seed=6)
        assert _snapshot(a) != _snapshot(b)

    def test_movie_and_product_deterministic(self):
        assert _snapshot(generate_movie_db(seed=3)) == _snapshot(
            generate_movie_db(seed=3)
        )
        assert _snapshot(generate_product_db(seed=3)) == _snapshot(
            generate_product_db(seed=3)
        )

    def test_xml_deterministic(self):
        a = generate_bib_xml(seed=4)
        b = generate_bib_xml(seed=4)
        assert a.to_string() == b.to_string()

    def test_logs_deterministic(self):
        db = generate_product_db(seed=3)
        a = generate_query_log(db, "product", seed=9)
        b = generate_query_log(db, "product", seed=9)
        assert a == b


class TestIntegrity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generate_bibliographic_db(seed=5),
            lambda: generate_movie_db(seed=5),
            lambda: generate_product_db(seed=5),
            lambda: generate_events_db(seed=5),
            tiny_bibliographic_db,
            tutorial_events_db,
        ],
    )
    def test_referential_integrity(self, factory):
        assert factory().validate() == []

    def test_sizes_match_parameters(self):
        db = generate_bibliographic_db(
            n_authors=25, n_papers=40, n_conferences=4, seed=2
        )
        assert len(db.table("author")) == 25
        assert len(db.table("paper")) == 40
        assert len(db.table("conference")) == 4

    def test_without_cite(self):
        db = generate_bibliographic_db(seed=2, with_cite=False)
        assert "cite" not in db.schema


class TestShapes:
    def test_tutorial_events_verbatim(self):
        db = tutorial_events_db()
        rows = list(db.rows("events"))
        assert len(rows) == len(TUTORIAL_EVENTS)
        assert rows[0]["city"] == "houston"
        assert "motorcycle" in rows[3]["event"]

    def test_products_plant_ibm_correlation(self):
        db = generate_product_db(n_products=300, seed=13)
        lenovo_with_ibm = 0
        other_with_ibm = 0
        for row in db.rows("product"):
            has_ibm = "ibm" in tokenize(row["description"])
            if row["brand"] == "lenovo":
                lenovo_with_ibm += has_ibm
            else:
                other_with_ibm += has_ibm
        assert lenovo_with_ibm > 0
        assert other_with_ibm == 0

    def test_bib_xml_has_conf_and_journal(self):
        tree = generate_bib_xml(seed=4, with_journals=True)
        tags = {child.tag for child in tree.children}
        assert {"conf", "journal"} <= tags

    def test_auctions_roles(self):
        tree = generate_auctions_xml(seed=37)
        roles = {n.tag for n in tree.descendants() if n.is_leaf}
        assert {"seller", "buyer", "auctioneer", "price", "name"} <= roles

    def test_slide_trees_shapes(self):
        conf = slide_conf_tree()
        assert len(conf.find_by_tag("paper")) == 2
        auction = slide_auction_tree()
        assert len(auction.children) == 3


class TestLogs:
    def test_query_log_conditions_reference_real_values(self):
        db = generate_product_db(seed=3)
        log = generate_query_log(db, "product", n_queries=50, seed=9)
        assert log
        brands = set(db.table("product").distinct("brand"))
        for entry in log:
            for attr, value in entry.conditions:
                if attr == "brand":
                    assert value in brands

    def test_click_log_clicks_exist(self):
        db = generate_movie_db(seed=3)
        log = generate_click_log(db, "movie", n_queries=40, seed=9)
        for entry in log:
            for tid in entry.clicked:
                assert tid.rowid < len(db.table("movie"))

    def test_binding_frequencies(self):
        db = generate_product_db(seed=3)
        log = generate_query_log(db, "product", n_queries=80, seed=9)
        frequencies = binding_frequencies(log)
        assert frequencies
        for (attr, token), count in frequencies.items():
            assert count > 0
            assert isinstance(attr, str) and isinstance(token, str)
