"""Final property-test batch: mCK optimality on random instances,
interconnection symmetry, and result-probability bounds."""

import random

import pytest

from repro.datasets.xml_corpora import generate_bib_xml
from repro.spatial.mck import mck_exhaustive, mck_grid
from repro.spatial.objects import SpatialDatabase, SpatialObject
from repro.xml_search.interconnection import interconnected
from repro.xmltree.index import XmlKeywordIndex


class TestMckRandomInstances:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_grid_equals_exhaustive(self, seed):
        rng = random.Random(seed)
        keywords = ["a", "b", "c"]
        objects = []
        for oid in range(30):
            text = " ".join(rng.sample(keywords + ["x", "y"], rng.randint(1, 2)))
            objects.append(
                SpatialObject(
                    oid,
                    round(rng.uniform(0, 10), 2),
                    round(rng.uniform(0, 10), 2),
                    text,
                )
            )
        db = SpatialDatabase(objects, cell_size=1.5)
        exact = mck_exhaustive(db, keywords)
        fast = mck_grid(db, keywords)
        if exact is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast[1] == pytest.approx(exact[1])


class TestInterconnectionProperties:
    @pytest.mark.parametrize("seed", [3, 7])
    def test_symmetry(self, seed):
        rng = random.Random(seed)
        tree = generate_bib_xml(n_confs=3, papers_per_conf=4, seed=seed)
        index = XmlKeywordIndex(tree)
        nodes = [n.dewey for n in tree.descendants(include_self=True)]
        for _ in range(30):
            a, b = rng.choice(nodes), rng.choice(nodes)
            assert interconnected(tree, a, b) == interconnected(tree, b, a)

    def test_ancestor_descendant_always_related(self):
        tree = generate_bib_xml(n_confs=2, papers_per_conf=3, seed=5)
        for node in tree.descendants():
            # A node and its parent share a 2-node path: related unless
            # the endpoints repeat an interior label (impossible here).
            assert interconnected(tree, node.dewey, node.parent.dewey)


class TestProbabilisticXmlBounds:
    @pytest.mark.parametrize("seed", [11, 13])
    def test_probabilities_in_unit_interval(self, seed):
        from repro.xml_search.probabilistic_xml import ProbabilisticXml

        rng = random.Random(seed)
        tree = generate_bib_xml(n_confs=2, papers_per_conf=3, seed=seed)
        probs = {}
        for node in tree.descendants():
            if rng.random() < 0.3:
                probs[node.dewey] = round(rng.uniform(0.1, 1.0), 2)
        pxml = ProbabilisticXml(tree, probs)
        index = XmlKeywordIndex(tree)
        vocab = [v for v in index.vocabulary if index.list_size(v) >= 1]
        for _ in range(5):
            query = rng.sample(vocab, 2)
            for node, p in pxml.topk(query, k=5):
                assert 0.0 <= p <= 1.0 + 1e-9

    def test_more_uncertainty_never_raises_probability(self):
        from repro.xml_search.probabilistic_xml import ProbabilisticXml
        from repro.xmltree.build import element as e
        from repro.xmltree.build import text_element as t

        tree = e("r", t("a", "k1"), t("b", "k2"))
        certain = ProbabilisticXml(tree)
        uncertain = ProbabilisticXml(tree, {tree.children[0].dewey: 0.4})
        q = ["k1", "k2"]
        assert uncertain.result_probability(tree, q) <= certain.result_probability(
            tree, q
        )
