"""Tests for Steiner/BANKS/semantics/EASE/BLINKS graph search."""

import pytest

from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph_search.banks import banks_backward, banks_bidirectional
from repro.graph_search.blinks import blinks_topk
from repro.graph_search.ease import r_radius_steiner_graphs
from repro.graph_search.semantics import (
    distinct_core_results,
    distinct_root_results,
)
from repro.graph_search.star import star_approximation
from repro.graph_search.steiner import group_steiner_dp, tree_weight
from repro.index.distance import KeywordDistanceIndex
from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId


def N(i):
    """Abstract graph node (table 't', rowid i)."""
    return TupleId("t", i)


def slide30_graph():
    """Slide 30's weighted example graph.

    Nodes a, b, c, d, e with k1 at a/e, k2 at c, k3 at d.
    Edges: a-b 5, b-c 2, b-d 3, a-c 6, a-d 7, a-e 10, e-? 11 (e-c).
    The ST rooted at a via (c, d) costs 6+7=13; via b: 5+2+3=10 (GST).
    """
    g = DataGraph()
    a, b, c, d, e = (N(i) for i in range(5))
    g.add_edge(a, b, 5)
    g.add_edge(b, c, 2)
    g.add_edge(b, d, 3)
    g.add_edge(a, c, 6)
    g.add_edge(a, d, 7)
    g.add_edge(a, e, 10)
    g.add_edge(e, c, 11)
    groups = [[a, e], [c], [d]]  # k1, k2, k3
    return g, (a, b, c, d, e), groups


class TestGroupSteinerDP:
    def test_slide30_gst_weight_10(self):
        g, (a, b, c, d, e), groups = slide30_graph()
        tree = group_steiner_dp(g, groups)
        assert tree is not None
        assert tree.weight == pytest.approx(10.0)
        assert {a, b, c, d} == tree.nodes  # a(b(c,d))

    def test_tree_spans_all_groups(self):
        g, _, groups = slide30_graph()
        tree = group_steiner_dp(g, groups)
        for group in groups:
            assert any(n in tree.nodes for n in group)

    def test_edges_form_tree(self):
        g, _, groups = slide30_graph()
        tree = group_steiner_dp(g, groups)
        assert len(tree.edges) == len(tree.nodes) - 1
        assert tree.weight == pytest.approx(tree_weight(g, tree.edges))

    def test_single_group(self):
        g, (a, *_), _ = slide30_graph()
        tree = group_steiner_dp(g, [[a]])
        assert tree.weight == 0
        assert tree.nodes == {a}

    def test_disconnected_returns_none(self):
        g = DataGraph()
        g.add_edge(N(0), N(1), 1)
        g.add_node(N(5))
        assert group_steiner_dp(g, [[N(0)], [N(5)]]) is None

    def test_too_many_groups_raises(self):
        g, _, _ = slide30_graph()
        with pytest.raises(ValueError):
            group_steiner_dp(g, [[N(0)]] * 11)

    def test_empty_group_returns_none(self):
        g, _, _ = slide30_graph()
        assert group_steiner_dp(g, [[N(0)], []]) is None

    def test_on_database_graph(self, tiny_db, tiny_index, tiny_graph):
        groups = [
            tiny_index.matching_tuples("widom"),
            tiny_index.matching_tuples("xml"),
        ]
        tree = group_steiner_dp(tiny_graph, groups)
        assert tree is not None
        tables = {n.table for n in tree.nodes}
        assert "author" in tables and "paper" in tables


class TestBanks:
    def test_backward_finds_optimal_top1(self):
        g, _, groups = slide30_graph()
        result = banks_backward(g, groups, k=3)
        assert result.trees
        # top-1 distinct-root cost: root b has cost 0+... b->k1 via a =5,
        # b->c=2, b->d=3 => 10; root a: min(a,e)=0 +6+7=13? via b: 7,8 -> 15
        best_root = result.trees[0].root
        assert best_root == N(1)  # b

    def test_bidirectional_returns_connecting_trees(self):
        g, _, groups = slide30_graph()
        result = banks_bidirectional(g, groups, k=3)
        assert result.trees
        for tree in result.trees:
            nodes = tree.nodes
            for group in groups:
                assert any(n in nodes for n in group)

    def test_missing_group_gives_empty(self):
        g, _, _ = slide30_graph()
        assert banks_backward(g, [[N(0)], []], k=2).trees == []

    def test_on_database_graph(self, tiny_index, tiny_graph):
        groups = [
            tiny_index.matching_tuples("widom"),
            tiny_index.matching_tuples("xml"),
        ]
        result = banks_backward(tiny_graph, groups, k=5)
        assert result.trees
        assert result.nodes_expanded > 0


class TestStar:
    def test_star_at_least_connects(self):
        g, _, groups = slide30_graph()
        tree = star_approximation(g, groups)
        assert tree is not None
        for group in groups:
            assert any(n in tree.nodes for n in group)

    def test_star_close_to_optimal_on_slide30(self):
        g, _, groups = slide30_graph()
        opt = group_steiner_dp(g, groups).weight
        approx = star_approximation(g, groups).weight
        assert approx <= 4 * opt  # far tighter in practice
        assert approx >= opt

    def test_star_on_database(self, tiny_index, tiny_graph):
        groups = [
            tiny_index.matching_tuples("john"),
            tiny_index.matching_tuples("sigmod"),
        ]
        tree = star_approximation(tiny_graph, groups)
        assert tree is not None
        opt = group_steiner_dp(tiny_graph, groups)
        assert tree.weight >= opt.weight - 1e-9


class TestSemantics:
    def test_distinct_root_costs_sorted(self):
        g, _, groups = slide30_graph()
        answers = distinct_root_results(g, groups, dmax=20)
        costs = [a.cost for a in answers]
        assert costs == sorted(costs)
        assert answers[0].root == N(1)

    def test_distinct_core_dedups_roots(self):
        g, _, groups = slide30_graph()
        roots = distinct_root_results(g, groups, dmax=20)
        cores = distinct_core_results(g, groups, dmax=20)
        # Each core appears once; #cores <= #match combinations.
        seen = {a.core for a in cores}
        assert len(seen) == len(cores)
        # Distinct-root produces >= as many answers as distinct cores
        # when every root is counted (the inflation E18 measures).
        assert len(roots) >= len(cores)

    def test_core_centers_within_radius(self):
        g, _, groups = slide30_graph()
        for answer in distinct_core_results(g, groups, dmax=20):
            # center connects all core members by construction
            assert answer.cost >= 0

    def test_combination_guard(self):
        g, _, _ = slide30_graph()
        big = [[N(i) for i in range(5)]] * 9
        with pytest.raises(ValueError):
            distinct_core_results(g, big, max_core_combinations=10)


class TestEase:
    def test_r_radius_covers_keywords(self):
        g, _, groups = slide30_graph()
        answers = r_radius_steiner_graphs(g, groups, r=2)
        assert answers
        for answer in answers:
            assert answer.keyword_nodes <= answer.nodes

    def test_steiner_reduction_removes_unnecessary(self, tiny_index, tiny_graph):
        groups = [
            tiny_index.matching_tuples("widom"),
            tiny_index.matching_tuples("xml"),
        ]
        answers = r_radius_steiner_graphs(tiny_graph, groups, r=3)
        assert answers
        for answer in answers:
            ball = set(tiny_graph.bfs_hops(answer.center, max_hops=3))
            assert answer.nodes <= ball
            assert len(answer.nodes) <= len(ball)

    def test_results_sorted_by_compactness(self):
        g, _, groups = slide30_graph()
        answers = r_radius_steiner_graphs(g, groups, r=3)
        sizes = [a.size() for a in answers]
        assert sizes == sorted(sizes)


class TestBlinks:
    def test_agrees_with_distinct_root(self, tiny_db, tiny_index, tiny_graph):
        keywords = ["widom", "xml"]
        kdi = KeywordDistanceIndex(tiny_graph, tiny_index, max_distance=10)
        result = blinks_topk(kdi, keywords, k=3)
        groups = [tiny_index.matching_tuples(k) for k in keywords]
        expected = distinct_root_results(tiny_graph, groups, dmax=10, k=3)
        assert [round(c, 6) for c, _ in result.answers] == [
            round(a.cost, 6) for a in expected
        ]

    def test_empty_when_keyword_missing(self, tiny_graph, tiny_index):
        kdi = KeywordDistanceIndex(tiny_graph, tiny_index)
        assert blinks_topk(kdi, ["widom", "zebra"], k=3).answers == []

    def test_touches_fewer_entries_than_full_lists(self, biblio_index, biblio_graph):
        keywords = ["database", "john"]
        kdi = KeywordDistanceIndex(biblio_graph, biblio_index, max_distance=6)
        result = blinks_topk(kdi, keywords, k=3)
        total_entries = sum(len(kdi.sorted_list(k)) for k in keywords)
        assert result.answers
        assert result.entries_touched <= total_entries
