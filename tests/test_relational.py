"""Unit tests for the relational substrate."""

import pytest

from repro.relational.database import Database, TupleId
from repro.relational.executor import JoinStats, hash_join, join_rows, project, select
from repro.relational.executor import JoinedRow
from repro.relational.schema import (
    Column,
    ForeignKey,
    Schema,
    SchemaError,
    TableSchema,
)
from repro.relational.schema_graph import SchemaGraph


def make_schema():
    return Schema(
        [
            TableSchema(
                "a",
                (Column("id", "int"), Column("name", "str", text=True)),
                primary_key="id",
            ),
            TableSchema(
                "b",
                (
                    Column("id", "int"),
                    Column("a_id", "int", nullable=True),
                    Column("note", "str", nullable=True, text=True),
                ),
                primary_key="id",
                foreign_keys=(ForeignKey("a_id", "a", "id"),),
            ),
        ]
    )


class TestSchema:
    def test_column_type_validation(self):
        col = Column("x", "int")
        assert col.validate(3) == 3
        with pytest.raises(SchemaError):
            col.validate("nope")
        with pytest.raises(SchemaError):
            col.validate(True)  # bools are not ints here

    def test_nullable(self):
        with pytest.raises(SchemaError):
            Column("x", "int").validate(None)
        assert Column("x", "int", nullable=True).validate(None) is None

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "bool")

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a"),), primary_key="missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a"), Column("a")), primary_key="a")

    def test_fk_must_reference_existing_table(self):
        with pytest.raises(SchemaError):
            Schema(
                [
                    TableSchema(
                        "t",
                        (Column("id", "int"), Column("x", "int")),
                        primary_key="id",
                        foreign_keys=(ForeignKey("x", "ghost", "id"),),
                    )
                ]
            )

    def test_fk_must_reference_primary_key(self):
        with pytest.raises(SchemaError):
            Schema(
                [
                    TableSchema(
                        "a",
                        (Column("id", "int"), Column("other", "int")),
                        primary_key="id",
                    ),
                    TableSchema(
                        "b",
                        (Column("id", "int"), Column("a_ref", "int")),
                        primary_key="id",
                        foreign_keys=(ForeignKey("a_ref", "a", "other"),),
                    ),
                ]
            )

    def test_relationship_detection(self):
        schema = Schema(
            [
                TableSchema("x", (Column("id", "int"),), primary_key="id"),
                TableSchema("y", (Column("id", "int"),), primary_key="id"),
                TableSchema(
                    "link",
                    (
                        Column("id", "int"),
                        Column("x_id", "int"),
                        Column("y_id", "int"),
                    ),
                    primary_key="id",
                    foreign_keys=(
                        ForeignKey("x_id", "x", "id"),
                        ForeignKey("y_id", "y", "id"),
                    ),
                ),
            ]
        )
        assert schema.table("link").is_relationship()
        assert not schema.table("x").is_relationship()
        assert set(schema.entity_tables()) == {"x", "y"}
        assert schema.relationship_tables() == ["link"]


class TestTable:
    def test_insert_and_lookup(self):
        db = Database(make_schema())
        db.insert("a", id=1, name="alpha")
        db.insert("a", id=2, name="beta")
        db.insert("b", id=10, a_id=1, note="points to alpha")
        tbl = db.table("b")
        assert len(tbl) == 1
        assert tbl.lookup("a_id", 1)[0]["note"] == "points to alpha"
        assert tbl.lookup("a_id", 99) == []

    def test_duplicate_pk_rejected(self):
        db = Database(make_schema())
        db.insert("a", id=1, name="x")
        with pytest.raises(SchemaError):
            db.insert("a", id=1, name="y")

    def test_unknown_column_rejected(self):
        db = Database(make_schema())
        with pytest.raises(SchemaError):
            db.insert("a", id=1, name="x", bogus=1)

    def test_fk_checked_on_insert(self):
        db = Database(make_schema())
        with pytest.raises(SchemaError):
            db.insert("b", id=1, a_id=42, note="dangling")
        db.insert("b", id=1, a_id=None, note="null fk ok")

    def test_row_accessors(self):
        db = Database(make_schema())
        tid = db.insert("a", id=5, name="hello world")
        row = db.row(tid)
        assert row["name"] == "hello world"
        assert row.key == 5
        assert row.as_dict() == {"id": 5, "name": "hello world"}
        assert row.text() == "hello world"

    def test_distinct(self):
        db = Database(make_schema())
        db.insert("a", id=1, name="x")
        db.insert("a", id=2, name="x")
        db.insert("a", id=3, name="y")
        assert db.table("a").distinct("name") == ["x", "y"]


class TestDatabaseNavigation:
    def test_references_and_referrers(self):
        db = Database(make_schema())
        a_tid = db.insert("a", id=1, name="alpha")
        b_tid = db.insert("b", id=10, a_id=1, note="child")
        b_row = db.row(b_tid)
        parents = db.references_of(b_row)
        assert len(parents) == 1
        assert parents[0][0].key == 1
        a_row = db.row(a_tid)
        children = db.referrers_of(a_row)
        assert len(children) == 1
        assert children[0][0].key == 10

    def test_neighbors_symmetric(self):
        db = Database(make_schema())
        a_tid = db.insert("a", id=1, name="alpha")
        b_tid = db.insert("b", id=10, a_id=1, note="child")
        assert db.neighbors(b_tid) == [a_tid]
        assert db.neighbors(a_tid) == [b_tid]

    def test_validate_reports_dangling(self):
        db = Database(make_schema())
        db.insert("a", id=1, name="alpha")
        db.insert("b", id=10, a_id=1, note="ok", check_fk=False)
        assert db.validate() == []

    def test_size(self, tiny_db):
        total = sum(len(t) for t in tiny_db.tables.values())
        assert tiny_db.size() == total


class TestExecutor:
    def _populated(self):
        db = Database(make_schema())
        db.insert("a", id=1, name="alpha")
        db.insert("a", id=2, name="beta")
        db.insert("b", id=10, a_id=1, note="one")
        db.insert("b", id=11, a_id=1, note="two")
        db.insert("b", id=12, a_id=2, note="three")
        db.insert("b", id=13, a_id=None, note="orphan")
        return db

    def test_select_counts(self):
        db = self._populated()
        stats = JoinStats()
        rows = list(select(db.rows("b"), lambda r: r["a_id"] == 1, stats))
        assert [r["note"] for r in rows] == ["one", "two"]
        assert stats.tuples_read == 4
        assert stats.tuples_emitted == 2

    def test_project(self):
        db = self._populated()
        names = list(project(db.rows("a"), ["name"]))
        assert names == [("alpha",), ("beta",)]

    def test_hash_join_basic(self):
        db = self._populated()
        left = (JoinedRow(("a",), (row,)) for row in db.rows("a"))
        joined = list(
            hash_join(left, "a", "id", db.rows("b"), "b", "a_id")
        )
        pairs = sorted((j["a"]["name"], j["b"]["note"]) for j in joined)
        assert pairs == [
            ("alpha", "one"),
            ("alpha", "two"),
            ("beta", "three"),
        ]

    def test_null_keys_never_join(self):
        db = self._populated()
        left = (JoinedRow(("b",), (row,)) for row in db.rows("b"))
        joined = list(hash_join(left, "b", "a_id", db.rows("a"), "a", "id"))
        assert all(j["b"]["a_id"] is not None for j in joined)

    def test_join_rows_pipeline(self):
        db = self._populated()
        results = list(
            join_rows(
                db.rows("a"),
                "a",
                [("a", "id", list(db.rows("b")), "b", "a_id")],
            )
        )
        assert len(results) == 3
        assert results[0].aliases == ("a", "b")

    def test_joined_row_equality_and_lookup(self):
        db = self._populated()
        row_a = next(iter(db.rows("a")))
        j1 = JoinedRow(("x",), (row_a,))
        j2 = JoinedRow(("x",), (row_a,))
        assert j1 == j2
        assert hash(j1) == hash(j2)
        assert j1["x"] is row_a
        with pytest.raises(KeyError):
            j1["nope"]


class TestSchemaGraph:
    def test_edges_and_neighbors(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        assert set(graph.tables) == {"author", "conference", "paper", "write", "cite"}
        neighbors = {t for t, _ in graph.neighbors("paper")}
        assert neighbors == {"conference", "write", "cite"}

    def test_join_columns_orientation(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        edge = graph.edges_between("write", "author")[0]
        assert edge.join_columns("write") == ("aid", "aid")
        assert edge.join_columns("author") == ("aid", "aid")

    def test_self_relationship_edges(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        cite_edges = graph.edges_between("cite", "paper")
        assert len(cite_edges) == 2  # citing and cited

    def test_shortest_join_path(self, tiny_db):
        graph = SchemaGraph(tiny_db.schema)
        path = graph.shortest_join_path("author", "conference")
        assert path[0] == "author"
        assert path[-1] == "conference"
        assert len(path) == 4  # author-write-paper-conference

    def test_connected(self, tiny_db):
        assert SchemaGraph(tiny_db.schema).is_connected()
