"""Tests for spelling, cleaning, autocomplete, rewriting and synonyms."""

import pytest

from repro.ambiguity.autocomplete import Tastier
from repro.ambiguity.cleaning import QueryCleaner
from repro.ambiguity.rewriting import (
    KeywordPlusPlus,
    earth_movers_distance_1d,
    kl_divergence,
)
from repro.ambiguity.spelling import NoisyChannelCorrector
from repro.ambiguity.synonyms import (
    click_log_synonyms,
    data_only_similarity,
    similar_values,
)
from repro.datasets.logs import ClickLogEntry, generate_click_log
from repro.relational.database import TupleId


class TestNoisyChannel:
    FREQ = {"ipad": 50, "ipod": 30, "apple": 80, "nano": 20, "att": 10}

    def test_exact_token_wins(self):
        corr = NoisyChannelCorrector(self.FREQ)
        assert corr.correct("ipad") == "ipad"

    def test_slide66_ipd_to_ipad(self):
        """Slide 66: observed 'ipd' -> candidates ipad/ipod; the prior
        (ipad more frequent) breaks the tie."""
        corr = NoisyChannelCorrector(self.FREQ)
        candidates = [t for t, _ in corr.candidates("ipd")]
        assert candidates[0] == "ipad"
        assert "ipod" in candidates

    def test_error_model_penalises_distance(self):
        corr = NoisyChannelCorrector(self.FREQ)
        assert corr.error_probability("ipd", "ipad") > corr.error_probability(
            "ipd", "apple"
        )
        assert corr.error_probability("x", "nano") == 0.0  # beyond budget

    def test_unknown_token_stays(self):
        corr = NoisyChannelCorrector(self.FREQ)
        assert corr.correct("zzzzzzz") == "zzzzzzz"

    def test_prior_normalised(self):
        corr = NoisyChannelCorrector(self.FREQ)
        total = sum(corr.prior(t) for t in self.FREQ)
        assert 0 < total <= 1.0


class TestQueryCleaner:
    def test_cleans_misspelled_keyword(self, tiny_index):
        cleaner = QueryCleaner(tiny_index)
        result = cleaner.clean(["datbase"])
        # tiny db has "databases" in abstract? Use a known term: "keyword".
        result = cleaner.clean(["keyward"])
        assert result.cleaned_tokens() == ["keyword"]

    def test_preserves_correct_query(self, tiny_index):
        cleaner = QueryCleaner(tiny_index)
        result = cleaner.clean(["xml", "keyword"])
        assert result.cleaned_tokens() == ["xml", "keyword"]

    def test_segmentation_groups_cooccurring_tokens(self, tiny_index):
        cleaner = QueryCleaner(tiny_index)
        # "xml keyword" co-occur in paper 0 => preferred as one segment.
        result = cleaner.clean(["xml", "keyword", "widom"])
        segment_lengths = [len(s.cleaned) for s in result.segments]
        assert sum(segment_lengths) == 3
        assert max(segment_lengths) >= 2

    def test_nonempty_guarantee(self, tiny_index):
        cleaner = QueryCleaner(tiny_index, require_nonempty=True)
        result = cleaner.clean(["keyward", "serach"])
        for segment in result.segments:
            assert segment.support > 0

    def test_empty_query(self, tiny_index):
        cleaner = QueryCleaner(tiny_index)
        result = cleaner.clean([])
        assert result.segments == ()
        assert result.cleaned_tokens() == []


class TestTastier:
    def test_prefix_search_finds_tuples(self, tiny_graph, tiny_index):
        tastier = Tastier(tiny_graph, tiny_index, delta=2)
        result = tastier.search(["wid", "xm"], k=5)
        assert result.answers
        assert result.candidates_after_pruning <= result.candidates_initial

    def test_pruning_reduces_candidates(self, biblio_graph, biblio_index):
        tastier = Tastier(biblio_graph, biblio_index, delta=2)
        result = tastier.search(["joh", "data"], k=5)
        assert result.candidates_after_pruning <= result.candidates_initial

    def test_unknown_prefix_gives_empty(self, tiny_graph, tiny_index):
        tastier = Tastier(tiny_graph, tiny_index, delta=2)
        assert tastier.search(["zzzz"], k=5).answers == []

    def test_complete_keyword(self, tiny_graph, tiny_index):
        tastier = Tastier(tiny_graph, tiny_index)
        suggestions = tastier.complete_keyword("si")
        assert "sigmod" in suggestions

    def test_answers_sorted_by_cost(self, tiny_graph, tiny_index):
        tastier = Tastier(tiny_graph, tiny_index, delta=2)
        result = tastier.search(["xml"], k=10)
        costs = [c for _, c in result.answers]
        assert costs == sorted(costs)


class TestDivergences:
    def test_kl_zero_for_identical(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, dict(p)) == pytest.approx(0.0, abs=1e-6)

    def test_kl_positive_for_shifted(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.1, "b": 0.9}
        assert kl_divergence(p, q) > 0.5

    def test_emd_identical_zero(self):
        xs = [1.0, 2.0, 3.0]
        assert earth_movers_distance_1d(xs, list(xs)) == pytest.approx(0.0)

    def test_emd_shift(self):
        xs = [0.0, 0.0]
        ys = [1.0, 1.0]
        assert earth_movers_distance_1d(xs, ys) == pytest.approx(1.0)


class TestKeywordPlusPlus:
    @pytest.fixture(scope="class")
    def kpp(self, product_db):
        kpp = KeywordPlusPlus(
            product_db,
            "product",
            categorical_attributes=["brand", "category"],
            numerical_attributes=["screen_size", "weight", "price"],
        )
        log = [
            ["ibm", "laptop"],
            ["laptop"],
            ["ibm", "business"],
            ["business"],
            ["small", "laptop"],
            ["small", "tablet"],
            ["tablet"],
        ]
        kpp.learn(log)
        return kpp

    def test_ibm_maps_to_lenovo(self, kpp):
        mapping = kpp.mappings.get("ibm")
        assert mapping is not None
        assert mapping.kind == "equality"
        assert mapping.attribute == "brand"
        assert mapping.value == "lenovo"

    def test_small_maps_to_screen_or_weight_asc(self, kpp):
        mapping = kpp.mappings.get("small")
        assert mapping is not None
        assert mapping.kind == "order_by"
        assert mapping.attribute in ("screen_size", "weight")
        assert mapping.direction == "asc"

    def test_structured_match_improves_recall(self, kpp, product_db):
        """Slide 95: literal 'ibm laptop' misses Lenovo laptops whose
        description lacks 'ibm'; the structured query finds them all."""
        literal = kpp.literal_match(["ibm", "laptop"])
        structured = kpp.structured_match(["ibm", "laptop"])
        truth = [
            r
            for r in product_db.rows("product")
            if r["brand"] == "lenovo" and r["category"] == "laptop"
        ]
        literal_hits = {r.rowid for r in literal} & {r.rowid for r in truth}
        structured_hits = {r.rowid for r in structured} & {r.rowid for r in truth}
        assert len(structured_hits) >= len(literal_hits)
        assert len(structured_hits) == len(truth)

    def test_translate_splits_residual(self, kpp):
        predicates, residual = kpp.translate(["ibm", "gaming"])
        assert [p.keyword for p in predicates] == ["ibm"]
        assert residual == ["gaming"]


class TestSynonyms:
    def test_click_overlap_detects_synonyms(self):
        t1, t2 = TupleId("movie", 1), TupleId("movie", 2)
        log = [
            ClickLogEntry(("indiana", "jones", "iv"), (t1,)),
            ClickLogEntry(("indiana", "jones", "4"), (t1,)),
            ClickLogEntry(("casablanca",), (t2,)),
        ]
        pairs = click_log_synonyms(log, min_overlap=0.9)
        assert (
            ("indiana", "jones", "4"),
            ("indiana", "jones", "iv"),
        ) in [(a, b) for a, b, _ in pairs]

    def test_no_false_synonyms(self):
        t1, t2 = TupleId("movie", 1), TupleId("movie", 2)
        log = [
            ClickLogEntry(("a",), (t1,)),
            ClickLogEntry(("b",), (t2,)),
        ]
        assert click_log_synonyms(log, min_overlap=0.5) == []

    def test_data_only_similarity_brands(self, product_db):
        """Same-category brands look more alike than brand vs category."""
        sim = data_only_similarity(
            product_db, "product", "brand", "lenovo", "asus",
            feature_attributes=["category"],
        )
        assert 0 < sim <= 1.0

    def test_similar_values_ranked(self, product_db):
        ranked = similar_values(
            product_db, "product", "brand", "lenovo",
            feature_attributes=["category", "description"], k=3,
        )
        assert len(ranked) == 3
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_generated_click_log_consistency(self, movie_db):
        log = generate_click_log(movie_db, "movie", n_queries=50, seed=3)
        assert log
        for entry in log:
            assert entry.clicked
