"""Public-API surface tests: every exported name resolves, the facade
round-trips, and __all__ stays consistent with reality."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.relational",
    "repro.xmltree",
    "repro.graph",
    "repro.index",
    "repro.datasets",
    "repro.schema_search",
    "repro.graph_search",
    "repro.xml_search",
    "repro.ambiguity",
    "repro.forms",
    "repro.analysis",
    "repro.eval",
    "repro.core",
    "repro.spatial",
    "repro.distributed",
]


class TestPublicApi:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{module_name} should declare __all__"
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_convenience_imports(self):
        from repro import (
            Column,
            Database,
            ForeignKey,
            KeywordSearchEngine,
            Query,
            Schema,
            SearchResult,
            TableSchema,
            TupleId,
            XmlResult,
            XmlSearchEngine,
        )

        assert KeywordSearchEngine and XmlSearchEngine

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_docstrings_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()


class TestSparkScoreBound:
    def test_upper_bound_dominates_actual(self, tiny_db, tiny_index):
        """spark_upper_bound must never underestimate spark_score —
        the soundness precondition of skyline-sweep termination."""
        from repro.relational.schema_graph import SchemaGraph
        from repro.schema_search.candidate_networks import (
            generate_candidate_networks,
        )
        from repro.schema_search.evaluate import all_results
        from repro.schema_search.scoring import (
            spark_score,
            spark_upper_bound,
            tuple_score,
        )
        from repro.schema_search.tuple_sets import TupleSets
        from repro.relational.database import TupleId

        query = ["widom", "xml"]
        ts = TupleSets(tiny_db, tiny_index, query)
        cns = generate_candidate_networks(SchemaGraph(tiny_db.schema), ts, max_size=5)
        for cn, joined in all_results(cns, ts):
            actual = spark_score(tiny_index, joined, query)
            scores = [
                tuple_score(tiny_index, TupleId(r.table.name, r.rowid), query)
                for r in joined.rows
            ]
            bound = spark_upper_bound(tiny_index, scores, len(joined.rows))
            assert actual <= bound + 1e-9


class TestCanonicalCodePermutation:
    def test_random_relabelings_share_code(self, tiny_db, tiny_index):
        import random

        from repro.relational.schema_graph import SchemaGraph
        from repro.schema_search.candidate_networks import (
            CandidateNetwork,
            generate_candidate_networks,
        )
        from repro.schema_search.tuple_sets import TupleSets

        ts = TupleSets(tiny_db, tiny_index, ["widom", "xml"])
        cns = generate_candidate_networks(SchemaGraph(tiny_db.schema), ts, max_size=5)
        rng = random.Random(5)
        for cn in cns:
            if cn.size < 2:
                continue
            for _ in range(3):
                perm = list(range(cn.size))
                rng.shuffle(perm)
                remap = {old: new for new, old in enumerate(perm)}
                nodes = [cn.nodes[i] for i in perm]
                edges = [(remap[a], remap[b], e) for a, b, e in cn.edges]
                # Keep node 0 connected first by rebuilding edge order.
                clone = CandidateNetwork(nodes, edges)
                assert clone.canonical_code() == cn.canonical_code()


class TestMeshOnGeneratedDb:
    def test_streaming_matches_batch_on_generated(self, biblio_db, biblio_index):
        """Streaming equivalence on a non-trivial database slice."""
        from repro.relational.schema_graph import SchemaGraph
        from repro.schema_search.candidate_networks import (
            generate_candidate_networks,
        )
        from repro.schema_search.evaluate import evaluate_cn
        from repro.schema_search.mesh import OperatorMesh
        from repro.schema_search.tuple_sets import TupleSets

        query = ["skyline", "anna"]
        ts = TupleSets(biblio_db, biblio_index, query)
        if ts.covered_keywords() != set(query):
            pytest.skip("keywords not present")
        cns = generate_candidate_networks(
            SchemaGraph(biblio_db.schema), ts, max_size=3
        )
        if not cns:
            pytest.skip("no CNs")
        mesh = OperatorMesh(cns, query)
        streamed = set()
        for tid in biblio_db.all_tuple_ids():
            for cn_index, rows in mesh.feed(biblio_db.row(tid)):
                streamed.add(
                    (cn_index, tuple((r.table.name, r.rowid) for r in rows))
                )
        batch = set()
        for cn_index, cn in enumerate(cns):
            for joined in evaluate_cn(cn, ts):
                batch.add((cn_index, joined.tuple_ids()))
        assert streamed == batch
