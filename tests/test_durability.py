"""Durability tests: WAL, snapshots, recovery, fsck, crash chaos.

Covers the WAL record format and torn-tail repair, atomic snapshot
commit/retention/fallback, snapshot+replay recovery (including the
bootstrap-only path), the DurableEngine front end (single-node and
sharded), failpoint-injected crashes at every durability stage with the
byte-identity acceptance gate, fsck corruption detection, atomic
``insert_many``, opt-in retry jitter and the CLI surface.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.durability import (
    DurableEngine,
    RecoveryError,
    SnapshotStore,
    WriteAheadLog,
    fsck,
    recover,
    recover_engine,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import format_trace
from repro.relational.database import Database
from repro.relational.schema import (
    Column,
    ForeignKey,
    Schema,
    SchemaError,
    TableSchema,
)
from repro.resilience.degradation import KNOWN_METHODS
from repro.resilience.failpoints import FAILPOINTS
from repro.resilience.retry import RetryPolicy
from repro.sharding import ShardedSearchEngine


def signature(results):
    """Canonical comparison form for the byte-identity gate."""
    return [(r.score, r.network, tuple(str(t) for t in r.tuple_ids())) for r in results]


QUERIES = ["john xml", "widom xml", "john sigmod", "levy logic"]


def assert_engines_identical(got, want, queries=QUERIES, k=5, methods=("schema",)):
    for method in methods:
        for query in queries:
            assert signature(got.search(query, k=k, method=method)) == signature(
                want.search(query, k=k, method=method)
            ), f"divergence on {query!r} via {method}"


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        records = [{"op": "insert", "table": "t", "values": {"i": i}} for i in range(5)]
        lsns = [wal.append(r) for r in records]
        assert lsns == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5
        replayed = list(wal.replay())
        assert [e.lsn for e in replayed] == lsns
        assert [e.record for e in replayed] == records
        assert wal.replay_stopped is None
        wal.close()

    def test_reopen_continues_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append({"op": "a"})
        wal.close()
        wal = WriteAheadLog(str(tmp_path))
        assert wal.truncated_bytes == 0
        assert wal.append({"op": "b"}) == 2
        assert [e.record["op"] for e in wal.replay()] == ["a", "b"]
        wal.close()

    def test_replay_after_lsn_skips_prefix(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        for i in range(4):
            wal.append({"i": i})
        assert [e.lsn for e in wal.replay(after_lsn=2)] == [3, 4]
        wal.close()

    def test_torn_tail_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append({"op": "keep"})
        wal.close()
        (seg,) = [p for p in tmp_path.iterdir() if p.suffix == ".seg"]
        with open(seg, "ab") as handle:
            handle.write(b"\x07\x07\x07")  # a torn partial header
        wal = WriteAheadLog(str(tmp_path))
        assert wal.truncated_bytes == 3
        assert wal.truncated_reason == "short header"
        assert [e.record["op"] for e in wal.replay()] == ["keep"]
        # The repaired log accepts appends at the next LSN.
        assert wal.append({"op": "next"}) == 2
        wal.close()

    def test_replay_stops_at_corrupt_record(self, tmp_path):
        # Two records fit the first segment, the third rotates — so the
        # corruption lands in a *non-tail* segment, beyond the reach of
        # open-time tail truncation, and replay must stop mid-stream.
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=50)
        for i in range(3):
            wal.append({"i": i})
        wal.close()
        first_seg = sorted(p for p in tmp_path.iterdir() if p.suffix == ".seg")[0]
        data = bytearray(first_seg.read_bytes())
        record_len = 16 + len(json.dumps({"i": 0}, separators=(",", ":")))
        data[record_len + 16 + 2] ^= 0xFF  # a payload byte of record 2
        first_seg.write_bytes(bytes(data))
        wal = WriteAheadLog(str(tmp_path))
        assert wal.truncated_bytes == 0  # the tail segment itself is clean
        replayed = list(wal.replay())
        assert [e.record["i"] for e in replayed] == [0]
        assert "crc mismatch" in wal.replay_stopped
        wal.close()

    def test_segment_rotation_and_prune(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=64)
        for i in range(10):
            wal.append({"i": i})
        stats = wal.stats()
        assert stats["segments"] > 1
        assert [e.record["i"] for e in wal.replay()] == list(range(10))
        removed = wal.prune(through_lsn=wal.last_lsn)
        assert removed == stats["segments"] - 1
        # The active tail survives pruning and keeps accepting appends.
        assert wal.stats()["segments"] == 1
        assert wal.append({"i": 10}) == 11
        wal.close()

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync="sometimes")
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync="interval", fsync_interval=0)

    def test_append_many_single_batch(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync="interval", fsync_interval=100)
        lsns = wal.append_many([{"i": i} for i in range(5)])
        assert lsns == [1, 2, 3, 4, 5]
        wal.close()
        wal = WriteAheadLog(str(tmp_path))
        assert len(list(wal.replay())) == 5
        wal.close()


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_roundtrip_preserves_rowids(self, tmp_path):
        db = tiny_bibliographic_db()
        store = SnapshotStore(str(tmp_path))
        info = store.write(db, lsn=7)
        assert info.lsn == 7 and info.rows == db.size()
        loaded, lsn = store.load(info)
        assert lsn == 7
        for name, table in db.tables.items():
            got = [list(row.values) for row in loaded.table(name).rows()]
            want = [list(row.values) for row in table.rows()]
            assert got == want, f"table {name} rows diverge"

    def test_latest_skips_corrupt_snapshot(self, tmp_path):
        db = tiny_bibliographic_db()
        metrics = MetricsRegistry()
        store = SnapshotStore(str(tmp_path), metrics=metrics)
        store.write(db, lsn=1)
        newest = store.write(db, lsn=2)
        data = bytearray(open(newest.data_path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(newest.data_path, "wb") as handle:
            handle.write(bytes(data))
        info = store.latest()
        assert info is not None and info.lsn == 1
        assert metrics.counter("snapshot.invalid_skipped").value == 1

    def test_retention_keeps_newest(self, tmp_path):
        db = tiny_bibliographic_db()
        store = SnapshotStore(str(tmp_path), retain=2)
        for lsn in (1, 2, 3):
            store.write(db, lsn=lsn)
        committed = store.list()
        assert [info.lsn for info in committed] == [2, 3]
        names = set(os.listdir(tmp_path))
        assert "snapshot-0000000000000001.json" not in names
        assert "manifest-0000000000000001.json" not in names

    def test_uncommitted_snapshot_is_invisible(self, tmp_path):
        db = tiny_bibliographic_db()
        store = SnapshotStore(str(tmp_path))
        FAILPOINTS.activate("snapshot.commit", exc=RuntimeError("kill"), times=1)
        with pytest.raises(RuntimeError):
            store.write(db, lsn=5)
        assert store.latest() is None
        # A later snapshot commits fine and cleans the leftover tmp.
        info = store.write(db, lsn=6)
        assert store.latest().lsn == 6
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))
        assert store.validate(info)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_snapshot_plus_replay_parity(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        for i in range(3):
            durable.insert("author", aid=500 + i, name=f"walter author{i}", affiliation=None)
        durable.close()

        engine, result = recover_engine(root)
        assert result.replayed == 3
        assert result.snapshot_lsn >= 1
        assert result.stopped is None

        reference_db = tiny_bibliographic_db()
        for i in range(3):
            reference_db.insert("author", aid=500 + i, name=f"walter author{i}", affiliation=None)
        assert_engines_identical(engine, KeywordSearchEngine(reference_db))
        assert fsck(engine).ok

    def test_bootstrap_only_path(self, tmp_path):
        # Empty database: no bootstrap snapshot is taken, so recovery
        # must rebuild purely from the WAL's leading schema record.
        root = str(tmp_path)
        empty = Database(tiny_bibliographic_db().schema)
        durable = DurableEngine(KeywordSearchEngine(empty), root)
        durable.insert("author", aid=1, name="ada lovelace", affiliation="analytical society")
        durable.insert("conference", cid=1, name="sigmod", year=1983, location=None)
        durable.close()
        assert not SnapshotStore(os.path.join(root, "snapshots")).list()

        engine, result = recover_engine(root)
        assert result.snapshot_lsn == 0
        assert result.replayed == 2
        assert signature(engine.search("ada lovelace", k=5))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(str(tmp_path))

    def test_metrics_and_trace(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        durable.insert("author", aid=600, name="trace author", affiliation=None)
        durable.close()
        metrics = MetricsRegistry()
        result = recover(root, metrics=metrics, trace=True)
        assert metrics.counter("recovery.replayed").value == 1
        assert result.trace is not None
        rendered = format_trace(result.trace)
        for stage in ("recover", "snapshot_load", "wal_open", "replay", "refresh"):
            assert stage in rendered


# ----------------------------------------------------------------------
# DurableEngine
# ----------------------------------------------------------------------
class TestDurableEngine:
    def test_acknowledged_insert_survives_reopen(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        tid = durable.insert("author", aid=700, name="durable author", affiliation=None)
        assert signature(durable.search("durable author", k=5))
        durable.close()

        recovered, result = DurableEngine.recover(root)
        assert result.replayed == 1
        assert signature(recovered.search("durable author", k=5))
        assert str(tid) in {
            t for r in recovered.search("durable author", k=5) for t in map(str, r.tuple_ids())
        }
        recovered.close()

    def test_insert_many_durable_single_record(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        before = durable.wal.last_lsn
        tids = durable.insert_many(
            "author",
            [
                {"aid": 710, "name": "batch author one", "affiliation": None},
                {"aid": 711, "name": "batch author two", "affiliation": None},
            ],
        )
        assert len(tids) == 2
        assert durable.wal.last_lsn == before + 1  # one WAL record for the batch
        durable.close()
        recovered, result = DurableEngine.recover(root)
        assert result.replayed == 2  # rows applied, not records read
        assert signature(recovered.search("batch author", k=5))
        recovered.close()

    def test_rejected_insert_not_logged(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        before = durable.wal.last_lsn
        with pytest.raises(SchemaError):
            durable.insert("write", wid=900, aid=424242, pid=0)  # dangling FK
        assert durable.wal.last_lsn == before
        assert durable.fsck().ok
        durable.close()

    def test_snapshot_prunes_wal(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(
            KeywordSearchEngine(tiny_bibliographic_db()),
            root,
            segment_max_bytes=128,
        )
        for i in range(10):
            durable.insert("author", aid=720 + i, name=f"prune author{i}", affiliation=None)
        assert durable.wal.stats()["segments"] > 1
        durable.snapshot()
        assert durable.wal.stats()["segments"] == 1
        durable.close()
        recovered, result = DurableEngine.recover(root)
        assert result.replayed == 0  # the snapshot covers everything
        assert signature(recovered.search("prune author3", k=5))
        recovered.close()

    def test_sharded_durable_insert_and_recovery(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(
            ShardedSearchEngine(tiny_bibliographic_db(), n_shards=2), root
        )
        durable.insert("author", aid=730, name="sharded durable author", affiliation=None)
        assert signature(durable.search("sharded durable author", k=5))
        durable.close()

        recovered, result = DurableEngine.recover(root, shards=2)
        assert result.replayed == 1
        reference_db = tiny_bibliographic_db()
        reference_db.insert("author", aid=730, name="sharded durable author", affiliation=None)
        reference = ShardedSearchEngine(reference_db, n_shards=2)
        assert_engines_identical(recovered, reference)
        assert recovered.fsck().ok
        recovered.close()


# ----------------------------------------------------------------------
# Crash chaos: failpoint-injected kills at every durability stage
# ----------------------------------------------------------------------
class TestCrashChaos:
    def _reference(self, extra_rows):
        db = tiny_bibliographic_db()
        for values in extra_rows:
            db.insert("author", **values)
        return KeywordSearchEngine(db)

    def test_kill_mid_append_loses_only_unacknowledged(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        safe = {"aid": 800, "name": "survivor author", "affiliation": None}
        durable.insert("author", **safe)
        FAILPOINTS.activate("wal.append", exc=RuntimeError("kill -9"), times=1)
        with pytest.raises(RuntimeError):
            durable.insert("author", aid=801, name="torn author", affiliation=None)
        durable.close()

        recovered, result = DurableEngine.recover(root)
        # The half-written record is a torn tail: truncated, not replayed.
        assert result.truncated_bytes > 0
        assert not signature(recovered.search("torn author", k=5))
        assert_engines_identical(recovered, self._reference([safe]))
        assert recovered.fsck().ok
        recovered.close()

    def test_kill_mid_fsync_keeps_flushed_record(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        FAILPOINTS.activate("wal.fsync", exc=RuntimeError("kill -9"), times=1)
        undecided = {"aid": 810, "name": "undecided author", "affiliation": None}
        with pytest.raises(RuntimeError):
            durable.insert("author", **undecided)
        durable.close()

        recovered, result = DurableEngine.recover(root)
        # The record was fully written and flushed before the kill, so
        # this crash resolves to "durable": it replays intact.
        assert result.truncated_bytes == 0
        assert result.replayed == 1
        assert signature(recovered.search("undecided author", k=5))
        assert_engines_identical(recovered, self._reference([undecided]))
        assert recovered.fsck().ok
        recovered.close()

    def test_kill_mid_snapshot_commit_falls_back(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        rows = [
            {"aid": 820 + i, "name": f"checkpoint author{i}", "affiliation": None}
            for i in range(4)
        ]
        for values in rows[:2]:
            durable.insert("author", **values)
        good = durable.snapshot()
        for values in rows[2:]:
            durable.insert("author", **values)
        FAILPOINTS.activate("snapshot.commit", exc=RuntimeError("kill -9"), times=1)
        with pytest.raises(RuntimeError):
            durable.snapshot()
        durable.close()

        recovered, result = DurableEngine.recover(root)
        # The uncommitted snapshot is invisible; recovery uses the last
        # committed one and replays the longer WAL suffix instead.
        assert result.snapshot_lsn == good.lsn
        assert result.replayed == 2
        assert_engines_identical(recovered, self._reference(rows))
        assert recovered.fsck().ok
        recovered.close()

    def test_post_recovery_parity_across_all_methods(self, tmp_path):
        root = str(tmp_path)
        durable = DurableEngine(KeywordSearchEngine(tiny_bibliographic_db()), root)
        rows = [
            {"aid": 830, "name": "grace hopper", "affiliation": "yale"},
            {"aid": 831, "name": "barbara liskov", "affiliation": "mit"},
        ]
        for values in rows:
            durable.insert("author", **values)
        FAILPOINTS.activate("wal.append", exc=RuntimeError("kill -9"), times=1)
        with pytest.raises(RuntimeError):
            durable.insert("author", aid=832, name="lost author", affiliation=None)
        durable.close()

        recovered, _ = DurableEngine.recover(root)
        reference = self._reference(rows)
        assert_engines_identical(
            recovered,
            reference,
            queries=["grace hopper", "widom xml", "john sigmod"],
            methods=KNOWN_METHODS,
        )
        report = recovered.fsck()
        assert report.ok, report.problems
        recovered.close()


# ----------------------------------------------------------------------
# fsck corruption detection
# ----------------------------------------------------------------------
class TestFsck:
    def test_clean_engine_passes(self):
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        engine.search("widom xml", k=3)
        report = fsck(engine)
        assert report.ok
        assert report.checked["postings"] > 0
        assert report.checked["fk_rows"] == engine.db.size()
        assert "fsck ok" in report.summary()

    def test_stale_index_detected(self):
        db = tiny_bibliographic_db()
        engine = KeywordSearchEngine(db)
        index = engine.index  # built now, then left stale
        db.insert("author", aid=900, name="unindexed author", affiliation=None)
        report = fsck(db=db, index=index)
        assert not report.ok
        assert any("missing from its posting list" in p for p in report.problems)
        assert any("document_count" in p for p in report.problems)

    def test_dangling_fk_detected(self):
        db = tiny_bibliographic_db()
        db.insert("write", wid=901, aid=424242, pid=0, check_fk=False)
        report = fsck(db=db)
        assert not report.ok
        assert any(p.startswith("fk: ") for p in report.problems)


# ----------------------------------------------------------------------
# Satellite: atomic insert_many
# ----------------------------------------------------------------------
class TestInsertManyAtomicity:
    def test_mid_batch_failure_applies_nothing(self):
        db = tiny_bibliographic_db()
        before_rows = len(db.table("author"))
        before_version = db.data_version
        with pytest.raises(SchemaError):
            db.insert_many(
                "author",
                [
                    {"aid": 910, "name": "valid author", "affiliation": None},
                    {"aid": 911, "name": 12345, "affiliation": None},  # bad type
                ],
            )
        assert len(db.table("author")) == before_rows
        assert db.data_version == before_version

    def test_duplicate_pk_within_batch_applies_nothing(self):
        db = tiny_bibliographic_db()
        before_rows = len(db.table("author"))
        with pytest.raises(SchemaError):
            db.insert_many(
                "author",
                [
                    {"aid": 920, "name": "first twin", "affiliation": None},
                    {"aid": 920, "name": "second twin", "affiliation": None},
                ],
            )
        assert len(db.table("author")) == before_rows

    def test_self_fk_within_batch(self):
        schema = Schema(
            [
                TableSchema(
                    "employee",
                    (
                        Column("eid", "int"),
                        Column("name", "str", text=True),
                        Column("boss", "int", nullable=True),
                    ),
                    "eid",
                    (ForeignKey("boss", "employee", "eid"),),
                )
            ]
        )
        db = Database(schema)
        tids = db.insert_many(
            "employee",
            [
                {"eid": 1, "name": "root manager", "boss": None},
                {"eid": 2, "name": "line worker", "boss": 1},
            ],
        )
        assert len(tids) == 2
        assert db.validate() == []


# ----------------------------------------------------------------------
# Satellite: opt-in retry jitter
# ----------------------------------------------------------------------
class TestRetryJitter:
    def test_default_is_exactly_deterministic(self):
        policy = RetryPolicy()
        assert policy.jitter == 0.0
        expected = [0.01, 0.02, 0.04, 0.08, 0.16, 0.25, 0.25]
        got = [policy.delay(attempt) for attempt in range(1, 8)]
        assert got == pytest.approx(expected)
        # Same delays on repeat: no hidden randomness at jitter=0.
        assert got == [policy.delay(attempt) for attempt in range(1, 8)]

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(jitter=0.5)
        base = policy.base_delay
        assert policy.delay(1, rng=lambda: 0.0) == pytest.approx(base)
        assert policy.delay(1, rng=lambda: 1.0) == pytest.approx(base * 1.5)
        for _ in range(50):
            delay = policy.delay(1)
            assert base <= delay <= base * 1.5

    def test_jitter_never_shrinks_the_cap_floor(self):
        policy = RetryPolicy(jitter=1.0)
        capped = policy.delay(10, rng=lambda: 0.0)
        assert capped == pytest.approx(policy.max_delay)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestDurabilityCli:
    def test_snapshot_recover_fsck_flow(self, tmp_path, capsys):
        root = str(tmp_path / "durable")
        assert cli_main(["snapshot", "--dataset", "tiny", "--dir", root]) == 0
        out = capsys.readouterr().out
        assert "snapshot committed" in out and "wal:" in out

        assert cli_main(["recover", "--dir", root, "--query", "widom xml", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "recovered:" in out and "replay" in out

        assert cli_main(["fsck", "--dir", root]) == 0
        assert "fsck ok" in capsys.readouterr().out

    def test_fsck_dataset_mode(self, capsys):
        assert cli_main(["fsck", "--dataset", "tiny"]) == 0
        assert "fsck ok" in capsys.readouterr().out

    def test_recover_missing_dir_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing-here")
        assert cli_main(["recover", "--dir", missing]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_metrics_check_fk(self, capsys):
        assert (
            cli_main(["metrics", "widom xml", "--dataset", "tiny", "--check-fk"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["fk_violations"] == []
