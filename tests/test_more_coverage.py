"""Edge cases and less-travelled paths across modules."""

import pytest

from repro.datasets.words import distinct_zipf_sample, zipf_choice, zipf_weights
from repro.graph.data_graph import DataGraph
from repro.graph.weights import banks_edge_weight, banks_node_prestige
from repro.index.inverted import InvertedIndex
from repro.index.qgram import QGramIndex
from repro.index.trie import Trie
from repro.relational.database import Database, TupleId
from repro.relational.executor import JoinStats, JoinedRow
from repro.relational.schema import Column, Schema, TableSchema
from repro.xml_search.describable import balanced_context_split
from repro.xml_search.slca import contains_all, subtree_matches
from repro.xmltree.build import element as e
from repro.xmltree.build import text_element as t


class TestJoinStats:
    def test_merge(self):
        a = JoinStats(tuples_read=3, tuples_emitted=1, joins_executed=2)
        b = JoinStats(tuples_read=4, tuples_emitted=2, joins_executed=1)
        a.merge(b)
        assert (a.tuples_read, a.tuples_emitted, a.joins_executed) == (7, 3, 3)


class TestJoinedRowErrors:
    def test_misaligned_aliases_rejected(self, tiny_db):
        row = tiny_db.table("author").row(0)
        with pytest.raises(ValueError):
            JoinedRow(("a", "b"), (row,))

    def test_distinct_rows_dedup(self, tiny_db):
        row = tiny_db.table("author").row(0)
        joined = JoinedRow(("a", "b"), (row, row))
        assert len(joined.distinct_rows()) == 1


class TestWeightsWrappers:
    def test_stateless_wrappers(self, tiny_db):
        paper0 = TupleId("paper", 0)
        write0 = TupleId("write", 0)
        assert banks_edge_weight(tiny_db, write0, paper0) >= 1.0
        assert banks_node_prestige(tiny_db, paper0) > 0.0

    def test_leaf_prestige_zero(self, tiny_db):
        # cite tuples are referenced by nothing.
        assert banks_node_prestige(tiny_db, TupleId("cite", 0)) == 0.0


class TestGraphEdgeCases:
    def test_self_loop_ignored(self):
        g = DataGraph()
        n = TupleId("t", 0)
        g.add_edge(n, n, 1.0)
        assert g.edge_count() == 0

    def test_empty_graph(self):
        g = DataGraph()
        assert len(g) == 0
        assert g.edge_count() == 0
        # An unknown source settles only itself at distance 0.
        assert g.dijkstra(TupleId("t", 0)) == {TupleId("t", 0): 0.0}

    def test_node_weight_default(self):
        g = DataGraph()
        n = TupleId("t", 0)
        g.add_node(n, 2.5)
        assert g.node_weight(n) == 2.5
        assert g.node_weight(TupleId("t", 9)) == 0.0


class TestIndexEdgeCases:
    def test_empty_database_index(self):
        schema = Schema(
            [
                TableSchema(
                    "x",
                    (Column("id", "int"), Column("txt", "str", text=True)),
                    primary_key="id",
                )
            ]
        )
        index = InvertedIndex(Database(schema))
        assert index.document_count == 0
        assert index.vocabulary == []
        assert index.matching_tuples("anything") == []
        assert index.tuples_matching_all([]) == []

    def test_trie_empty_vocab(self):
        trie = Trie([])
        assert len(trie) == 0
        assert trie.prefix_range("a") is None
        assert trie.complete("a") == []
        assert trie.fuzzy_prefix("abc") == []

    def test_qgram_q1(self):
        index = QGramIndex(["ab", "cd"], q=1)
        assert ("ab", 0) in index.lookup("ab")

    def test_qgram_invalid_q(self):
        with pytest.raises(ValueError):
            QGramIndex(["a"], q=0)


class TestSlcaHelpers:
    def test_subtree_matches(self):
        deweys = [(0, 1), (0, 1, 2), (0, 2), (0, 10)]
        assert subtree_matches(deweys, (0, 1)) == [(0, 1), (0, 1, 2)]
        assert subtree_matches(deweys, (0, 3)) == []

    def test_contains_all_root(self):
        lists = [[(0, 1)], [(0, 2)]]
        assert contains_all(lists, (0,))
        assert not contains_all(lists, (0, 1))


class TestBalancedContextSplit:
    def _nodes(self):
        tree = e(
            "root",
            e("a", t("x", "k")),
            e("a", t("x", "k")),
            e("b", t("x", "k")),
            e("c", t("x", "k")),
        )
        return list(tree.children)

    def test_split_respects_budget(self):
        nodes = self._nodes()
        parts = balanced_context_split(nodes, max_clusters=2)
        assert len(parts) <= 2
        total = sum(len(p) for p in parts)
        assert total == len(nodes)

    def test_no_split_needed(self):
        nodes = self._nodes()
        parts = balanced_context_split(nodes, max_clusters=10)
        assert len(parts) == 3  # /root/a, /root/b, /root/c

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            balanced_context_split(self._nodes(), max_clusters=0)


class TestWordPools:
    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(5)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_choice_from_pool(self):
        import random

        rng = random.Random(1)
        pool = ["a", "b", "c"]
        for _ in range(10):
            assert zipf_choice(rng, pool) in pool

    def test_distinct_sample_unique(self):
        import random

        rng = random.Random(1)
        sample = distinct_zipf_sample(rng, ["a", "b", "c", "d"], 3)
        assert len(sample) == len(set(sample)) == 3


class TestDataCloudWeighted:
    def test_result_scores_weighting(self, biblio_db):
        from repro.analysis.clouds import data_cloud

        rows = list(biblio_db.rows("paper"))[:10]
        uniform = dict(
            data_cloud(biblio_db, rows, ["database"], k=20, mode="relevance")
        )
        # Give all weight to the first result: its terms dominate.
        scores = [10.0] + [0.0] * (len(rows) - 1)
        weighted = data_cloud(
            biblio_db, rows, ["database"], k=5,
            mode="relevance", result_scores=scores,
        )
        first_tokens = set()
        from repro.index.text import tokenize

        for col in rows[0].table.schema.text_columns:
            value = rows[0][col]
            if value:
                first_tokens |= set(tokenize(str(value)))
        for term, _ in weighted:
            assert term in first_tokens

    def test_empty_results(self, biblio_db):
        from repro.analysis.clouds import data_cloud

        assert data_cloud(biblio_db, [], ["x"], k=5) == []


class TestXmlEngineIntegration:
    def test_full_pipeline_on_generated_corpus(self):
        from repro import XmlSearchEngine
        from repro.analysis.snippets import snippet_covers_keywords
        from repro.datasets.xml_corpora import generate_bib_xml

        tree = generate_bib_xml(n_confs=5, papers_per_conf=8, seed=21)
        engine = XmlSearchEngine(tree)
        results = engine.search("xml search", k=5)
        if not results:
            pytest.skip("terms absent in this seed")
        for result in results:
            items = engine.snippet(result, "xml search")
            assert items
            returns = engine.return_nodes(result, "xml search")
            assert returns
        clusters = engine.cluster_by_type(results, "xml search")
        assert sum(len(m) for _, _, m in clusters) == len(results)

    def test_search_k_none_returns_all(self):
        from repro import XmlSearchEngine
        from repro.datasets.xml_corpora import slide_conf_tree

        engine = XmlSearchEngine(slide_conf_tree())
        all_results = engine.search("mark")
        limited = engine.search("mark", k=1)
        assert len(all_results) >= len(limited)


class TestFormIndexExpansion:
    def test_expansion_deduplicates(self, tiny_db, tiny_index):
        from repro.forms.generation import generate_forms, generate_skeletons
        from repro.forms.matching import FormIndex
        from repro.relational.schema_graph import SchemaGraph

        skeletons = generate_skeletons(SchemaGraph(tiny_db.schema), max_size=2)
        forms = generate_forms(tiny_db.schema, skeletons)
        index = FormIndex(forms, tiny_index)
        expansions = index.expand_query(["xml", "xml"])
        as_tuples = [tuple(x) for x in expansions]
        assert len(as_tuples) == len(set(as_tuples))
