"""Tests for MILP Steiner trees, probabilistic XML search, and
personalized re-ranking."""

import random

import pytest

from repro.analysis.personalization import (
    PreferenceProfile,
    personalize,
    result_affinity,
)
from repro.graph.data_graph import DataGraph
from repro.graph_search.mip import steiner_milp, steiner_milp_rooted
from repro.graph_search.steiner import group_steiner_dp
from repro.relational.database import TupleId
from repro.xml_search.probabilistic_xml import ProbabilisticXml
from repro.xmltree.build import element as e
from repro.xmltree.build import text_element as t


def N(i):
    return TupleId("t", i)


def slide30_graph():
    g = DataGraph()
    a, b, c, d, ee = (N(i) for i in range(5))
    g.add_edge(a, b, 5)
    g.add_edge(b, c, 2)
    g.add_edge(b, d, 3)
    g.add_edge(a, c, 6)
    g.add_edge(a, d, 7)
    g.add_edge(a, ee, 10)
    g.add_edge(ee, c, 11)
    return g, [[a, ee], [c], [d]]


class TestMilpSteiner:
    def test_slide30_optimum(self):
        g, groups = slide30_graph()
        tree = steiner_milp(g, groups)
        assert tree is not None
        assert tree.weight == pytest.approx(10.0)

    def test_matches_dp_on_random_graphs(self):
        for seed in (3, 5, 9):
            rng = random.Random(seed)
            g = DataGraph()
            n = 8
            for _ in range(14):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    g.add_edge(N(u), N(v), rng.randint(1, 5))
            nodes = g.nodes
            groups = [
                [nodes[rng.randrange(len(nodes))]],
                [nodes[rng.randrange(len(nodes))],
                 nodes[rng.randrange(len(nodes))]],
            ]
            dp = group_steiner_dp(g, groups)
            mip = steiner_milp(g, groups)
            if dp is None:
                assert mip is None
            else:
                assert mip is not None
                assert mip.weight == pytest.approx(dp.weight)

    def test_rooted_variant(self):
        g, groups = slide30_graph()
        tree = steiner_milp_rooted(g, N(1), groups)  # rooted at b
        assert tree is not None
        assert tree.weight == pytest.approx(10.0)

    def test_empty_group(self):
        g, groups = slide30_graph()
        assert steiner_milp(g, [groups[0], []]) is None


class TestProbabilisticXml:
    def _doc(self):
        """paper(title=xml, author=widom?) where the author node exists
        with probability 0.5."""
        tree = e(
            "paper",
            t("title", "xml"),
            t("author", "widom"),
        )
        author_dewey = tree.children[1].dewey
        return tree, {author_dewey: 0.5}

    def test_certain_document(self):
        tree, _ = self._doc()
        pxml = ProbabilisticXml(tree)
        assert pxml.result_probability(tree, ["xml", "widom"]) == pytest.approx(1.0)

    def test_uncertain_author_halves_probability(self):
        tree, probs = self._doc()
        pxml = ProbabilisticXml(tree, probs)
        assert pxml.result_probability(tree, ["xml", "widom"]) == pytest.approx(0.5)
        assert pxml.result_probability(tree, ["xml"]) == pytest.approx(1.0)

    def test_two_uncertain_witnesses_combine(self):
        # Two independent 0.5-probability nodes both containing "k":
        # P(at least one survives) = 1 - 0.25 = 0.75.
        tree = e("r", t("a", "k"), t("b", "k"))
        probs = {tree.children[0].dewey: 0.5, tree.children[1].dewey: 0.5}
        pxml = ProbabilisticXml(tree, probs)
        assert pxml.containment_probability(tree, ["k"]) == pytest.approx(0.75)

    def test_existence_probability_chains(self):
        tree = e("r", e("mid", t("leaf", "x")))
        mid = tree.children[0]
        leaf = mid.children[0]
        pxml = ProbabilisticXml(tree, {mid.dewey: 0.5, leaf.dewey: 0.4})
        assert pxml.existence_probability(leaf) == pytest.approx(0.2)

    def test_topk_ranks_by_probability(self):
        tree = e(
            "bib",
            e("paper", t("title", "xml"), t("author", "widom")),
            e("paper", t("title", "xml"), t("author", "widom")),
        )
        # Second paper's author is uncertain.
        uncertain = tree.children[1].children[1].dewey
        pxml = ProbabilisticXml(tree, {uncertain: 0.3})
        results = pxml.topk(["xml", "widom"], k=2)
        assert len(results) == 2
        assert results[0][1] == pytest.approx(1.0)
        assert results[1][1] == pytest.approx(0.3)

    def test_invalid_probability(self):
        tree = e("r", t("a", "k"))
        with pytest.raises(ValueError):
            ProbabilisticXml(tree, {tree.children[0].dewey: 1.5})


class TestPersonalization:
    @pytest.fixture(scope="class")
    def results(self, tiny_db):
        """Equal-relevance results over papers with different topics."""
        from repro.core.results import SearchResult
        from repro.relational.executor import JoinedRow

        out = []
        for pid in (1, 2, 3):  # join / cloud / xml papers
            row = tiny_db.table("paper").row(pid)
            joined = JoinedRow(("n0",), (row,))
            out.append(
                SearchResult(score=1.0, network=f"paper#{pid}", joined=joined)
            )
        return out

    def test_affinity_in_unit_interval(self, results):
        profile = PreferenceProfile()
        profile.prefer_term("cloud", 1.0)
        for result in results:
            assert 0.0 <= result_affinity(result, profile) <= 1.0

    def test_preferred_topic_rises(self, results):
        profile = PreferenceProfile()
        profile.prefer_term("cloud", 1.0)
        reranked = personalize(results, profile, alpha=0.9)
        top_text = " ".join(
            row.text() for row in reranked[0].joined.distinct_rows()
        )
        assert "cloud" in top_text

    def test_alpha_zero_preserves_order(self, results):
        profile = PreferenceProfile()
        profile.prefer_term("cloud", 1.0)
        reranked = personalize(results, profile, alpha=0.0)
        assert [r.network for r in reranked] == [r.network for r in results]

    def test_alpha_validation(self, results):
        with pytest.raises(ValueError):
            personalize(results, PreferenceProfile(), alpha=1.5)

    def test_attribute_preference(self, results):
        profile = PreferenceProfile()
        profile.prefer_attribute("conference", "name", 1.0)
        scores = [result_affinity(r, profile) for r in results]
        assert any(s > 0 for s in scores) or all(s == 0 for s in scores)
