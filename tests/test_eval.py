"""Tests for INEX metrics and the axiomatic framework."""

import pytest

from repro.datasets.xml_corpora import slide_query_consistency_tree
from repro.eval.axioms import (
    all_lca_engine,
    axiom_matrix,
    check_data_consistency,
    check_data_monotonicity,
    check_query_consistency,
    check_query_monotonicity,
    elca_engine,
    slca_engine,
    standard_engines,
)
from repro.eval.inex import (
    average_generalized_precision,
    char_precision_recall_f,
    generalized_precision_at_k,
    read_prefix_with_tolerance,
    result_score_with_tolerance,
)
from repro.xmltree.build import element as e
from repro.xmltree.build import text_element as t


class TestInexMetrics:
    def test_perfect_result(self):
        # result exactly covers the relevant range
        score = result_score_with_tolerance((0, 10), [(0, 10)], tolerance=5)
        assert score == pytest.approx(1.0)

    def test_precision_recall_arithmetic(self):
        read = set(range(0, 10))
        p, r, f = char_precision_recall_f(read, [(0, 5)])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(1.0)
        assert f == pytest.approx(2 * 0.5 / 1.5)

    def test_tolerance_stops_reading(self):
        # relevant chars only at the start; tolerance 3 stops the user.
        read = read_prefix_with_tolerance((0, 100), [(0, 5)], tolerance=3)
        assert max(read) == 7  # 5 relevant + 3 irrelevant read
        assert len(read) == 8

    def test_tolerance_resets_on_relevant(self):
        # alternating relevance keeps the user reading
        relevant = [(i, i + 1) for i in range(0, 20, 2)]
        read = read_prefix_with_tolerance((0, 20), relevant, tolerance=3)
        assert len(read) == 20

    def test_zero_read_zero_scores(self):
        assert char_precision_recall_f(set(), [(0, 5)]) == (0.0, 0.0, 0.0)

    def test_gp_at_k(self):
        scores = [1.0, 0.5, 0.0]
        assert generalized_precision_at_k(scores, 1) == 1.0
        assert generalized_precision_at_k(scores, 2) == 0.75
        assert generalized_precision_at_k(scores, 3) == 0.5
        # padded beyond list length: divides by k
        assert generalized_precision_at_k(scores, 4) == pytest.approx(1.5 / 4)

    def test_agp(self):
        scores = [1.0, 0.5]
        expected = (1.0 + 0.75) / 2
        assert average_generalized_precision(scores) == pytest.approx(expected)

    def test_agp_empty(self):
        assert average_generalized_precision([]) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            generalized_precision_at_k([1.0], 0)


class TestAxioms:
    def test_slca_violates_preserve_data_monotonicity(self):
        """root(a(b(k1), c(k2))): SLCA = {a}; adding k2 under b moves the
        SLCA to b — the old result a is lost."""
        tree = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
        a_dewey = (0, 0)
        b_dewey = (0, 0, 0)
        before = slca_engine(tree, ["k1", "k2"])
        assert before == {a_dewey}
        report = check_data_monotonicity(
            slca_engine, tree, ["k1", "k2"], [b_dewey], mode="preserve"
        )
        assert not report.satisfied

    def test_all_lca_satisfies_preserve_data_monotonicity(self):
        tree = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
        parents = [n.dewey for n in tree.descendants(include_self=True) if n.children]
        report = check_data_monotonicity(
            all_lca_engine, tree, ["k1", "k2"], parents, mode="preserve"
        )
        assert report.satisfied

    def test_elca_violates_preserve_data_monotonicity(self):
        """root(x(k1), y(k2)): ELCA = {root}; adding k1 under y makes y
        contain everything, stealing root's k2 witness."""
        tree = e("root", e("x", t("m", "k1")), e("y", t("n", "k2")))
        before = elca_engine(tree, ["k1", "k2"])
        assert before == {(0,)}
        report = check_data_monotonicity(
            elca_engine, tree, ["k1", "k2"], [(0, 1)], mode="preserve"
        )
        assert not report.satisfied

    def test_slca_count_monotonicity_holds_here(self):
        tree = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
        parents = [n.dewey for n in tree.descendants(include_self=True) if n.children]
        report = check_data_monotonicity(
            slca_engine, tree, ["k1", "k2"], parents, mode="count"
        )
        assert report.satisfied

    def test_all_lca_violates_query_monotonicity(self):
        """Adding a keyword can multiply LCA combinations for all-LCA."""
        tree = e(
            "root",
            e("p", t("x", "k1"), t("y", "k2")),
            e("q", t("z", "k2")),
        )
        report = check_query_monotonicity(all_lca_engine, tree, ["k1"], ["k2"])
        # |results({k1})| = 1 match node; |results({k1,k2})| = 2 LCAs.
        assert not report.satisfied

    def test_query_consistency_slide109(self):
        """Slide 109: new results for Q2 = Q1 + {sigmod} must contain
        'sigmod'; SLCA behaves consistently here."""
        tree = slide_query_consistency_tree()
        report = check_query_consistency(
            slca_engine, tree, ["paper", "mark"], ["sigmod"]
        )
        assert report.satisfied

    def test_data_consistency_slca(self):
        tree = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
        parents = [n.dewey for n in tree.descendants(include_self=True) if n.children]
        report = check_data_consistency(slca_engine, tree, ["k1", "k2"], parents)
        assert report.satisfied

    def test_axiom_matrix_shape(self):
        tree = slide_query_consistency_tree()
        matrix = axiom_matrix(
            standard_engines(), tree, ["paper", "mark"], ["sigmod", "xml"]
        )
        assert set(matrix) == {"slca", "elca", "all-lca"}
        for reports in matrix.values():
            assert set(reports) == {
                "data-monotonicity",
                "data-monotonicity-count",
                "data-consistency",
                "query-monotonicity",
                "query-consistency",
            }
            for report in reports.values():
                assert report.checks > 0

    def test_report_rates(self):
        tree = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
        report = check_data_monotonicity(
            slca_engine, tree, ["k1", "k2"], [(0, 0, 0)], mode="preserve"
        )
        assert 0 < report.violation_rate <= 1
