"""Observability layer: tracing spans, metrics registry, profiling hooks.

Covers the obs primitives (span trees, log-scale histograms, registry),
the traced-vs-untraced parity contract across every engine method, the
>= 6-stage span coverage guarantee, and the three serving/caching-path
regression fixes this PR ships:

* single-flight ``LRUCache.get_or_compute`` (concurrent misses compute
  once, duplicates counted as ``coalesced``);
* thread-exact cache statistics (``hits + misses == lookups`` under a
  concurrent batch);
* cache hits preserving ``degraded`` / ``degraded_reason`` while
  carrying a fresh ``cache_hit=True`` lookup trace.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.results import ResultSet
from repro.core.xml_engine import XmlSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.datasets.xml_corpora import slide_conf_tree
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer, format_trace, span as trace_span
from repro.perf.lru import LRUCache

METHODS = [
    "schema",
    "banks",
    "banks2",
    "steiner",
    "distinct_root",
    "ease",
    "index_only",
]
XML_SEMANTICS = ["slca", "multiway", "elca"]

# Pipeline stages the ISSUE requires every traced computed query to
# cover (the span taxonomy is per-method; six distinct names minimum).
REQUIRED_MIN_STAGES = 6


def result_signature(results):
    """Comparable identity of a result list: scores, labels, tuples."""
    return [(r.score, r.network, tuple(r.tuple_ids())) for r in results]


def xml_signature(results):
    return [(r.score, r.root) for r in results]


# ----------------------------------------------------------------------
# Tracer / span primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_span_tree(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            root.tag("method", "schema")
            with tracer.span("parse") as p:
                p.add("keywords", 2)
                with tracer.span("clean"):
                    pass
            with tracer.span("evaluate") as e:
                e.add("cns", 3)
        trace = tracer.finish()
        assert trace.span_names() == ["search", "parse", "clean", "evaluate"]
        root = trace.find("search")
        assert root.tags["method"] == "schema"
        assert [c.name for c in root.children] == ["parse", "evaluate"]
        assert trace.find("parse").counters["keywords"] == 2
        assert all(s.duration_ms >= 0.0 for s in trace.spans())

    def test_record_attaches_pre_measured_child(self):
        tracer = Tracer()
        with tracer.span("evaluate"):
            tracer.record("score", 0.001, {"results": 4})
        trace = tracer.finish()
        score = trace.find("score")
        assert score.counters["results"] == 4
        assert score.duration_ms == pytest.approx(1.0)
        assert [c.name for c in trace.find("evaluate").children] == ["score"]

    def test_null_span_when_tracer_is_none(self):
        sp = trace_span(None, "anything")
        assert sp is NULL_SPAN
        with sp as inner:
            # Chainable no-ops, nothing recorded anywhere.
            inner.tag("a", 1).add("b", 2)

    def test_error_tagging(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("search"):
                raise ValueError("boom")
        trace = tracer.finish()
        assert trace.find("search").tags["error"] == "ValueError"

    def test_exports(self):
        tracer = Tracer()
        with tracer.span("search"):
            with tracer.span("parse"):
                pass
        trace = tracer.finish()
        as_json = json.loads(trace.to_json())
        assert as_json["name"] == "search"
        assert as_json["children"][0]["name"] == "parse"
        events = trace.to_chrome_trace()
        assert {e["name"] for e in events} == {"search", "parse"}
        assert all(e["ph"] == "X" for e in events)
        rendered = format_trace(trace)
        assert "search" in rendered and "parse" in rendered


# ----------------------------------------------------------------------
# Histogram / metrics registry
# ----------------------------------------------------------------------
class TestHistogram:
    def test_percentiles_within_bucket_error(self):
        hist = Histogram("h")
        for v in range(1, 1001):
            hist.observe(float(v))
        snap = hist.snapshot()
        assert snap["count"] == 1000
        assert snap["min"] == 1.0 and snap["max"] == 1000.0
        # Log-bucket resolution: ~±7.5% relative error at 32/decade.
        assert snap["p50"] == pytest.approx(500.0, rel=0.08)
        assert snap["p95"] == pytest.approx(950.0, rel=0.08)
        assert snap["p99"] == pytest.approx(990.0, rel=0.08)
        assert snap["mean"] == pytest.approx(500.5, rel=0.001)

    def test_percentiles_clamped_to_observed_range(self):
        hist = Histogram("h")
        hist.observe(42.0)
        snap = hist.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 42.0

    def test_non_positive_values_use_underflow_bucket(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(10.0)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == -1.0

    def test_skewed_distribution(self):
        hist = Histogram("h")
        for _ in range(99):
            hist.observe(1.0)
        hist.observe(1000.0)
        snap = hist.snapshot()
        assert snap["p50"] == pytest.approx(1.0, rel=0.08)
        assert snap["p99"] == pytest.approx(1.0, rel=0.08)
        assert snap["max"] == 1000.0


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("q.count")
        reg.inc("q.count", 2)
        reg.counter("q.count")  # get-or-create returns the same counter
        reg.gauge("pool.size").set(7)
        reg.observe("latency_ms", 5.0)
        snap = reg.snapshot()
        assert snap["q.count"] == 3
        assert snap["pool.size"] == 7
        assert snap["latency_ms"]["count"] == 1

    def test_callback_gauges_read_live_values(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.register_gauge("live", lambda: state["v"])
        assert reg.snapshot()["live"] == 1
        state["v"] = 9
        assert reg.snapshot()["live"] == 9

    def test_cross_type_name_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.inc("x", 5)
        reg.register_gauge("live", lambda: 3)
        reg.reset()
        snap = reg.snapshot()
        assert snap["x"] == 0
        assert snap["live"] == 3


# ----------------------------------------------------------------------
# Traced vs untraced parity + span coverage
# ----------------------------------------------------------------------
PARITY_QUERY = "john database"


@pytest.mark.parametrize("method", METHODS)
def test_traced_results_byte_identical(method):
    engine = KeywordSearchEngine(tiny_bibliographic_db())
    plain = engine.search(PARITY_QUERY, k=5, method=method, use_cache=False)
    traced = engine.search(
        PARITY_QUERY, k=5, method=method, use_cache=False, trace=True
    )
    assert result_signature(plain) == result_signature(traced)
    assert plain.trace is None
    assert traced.trace is not None


@pytest.mark.parametrize("cn_execution", ["shared", "pipeline"])
def test_traced_parity_both_cn_execution_modes(cn_execution):
    engine = KeywordSearchEngine(
        tiny_bibliographic_db(), cn_execution=cn_execution
    )
    plain = engine.search(PARITY_QUERY, k=5, use_cache=False)
    traced = engine.search(PARITY_QUERY, k=5, use_cache=False, trace=True)
    assert result_signature(plain) == result_signature(traced)
    names = set(traced.trace.span_names())
    assert {"plan", "evaluate", "topk"} <= names


@pytest.mark.parametrize("semantics", XML_SEMANTICS)
def test_xml_traced_results_byte_identical(semantics):
    engine = XmlSearchEngine(slide_conf_tree())
    plain = engine.search("keyword mark", k=5, semantics=semantics)
    traced = engine.search("keyword mark", k=5, semantics=semantics, trace=True)
    assert xml_signature(plain) == xml_signature(traced)
    assert traced.trace is not None
    assert len(set(traced.trace.span_names())) >= REQUIRED_MIN_STAGES


@pytest.mark.parametrize("method", METHODS)
def test_span_coverage_at_least_six_stages(method):
    engine = KeywordSearchEngine(tiny_bibliographic_db(), trace=True)
    results = engine.search(PARITY_QUERY, k=5, method=method, use_cache=False)
    assert results, f"{method} returned nothing for {PARITY_QUERY!r}"
    names = results.trace.span_names()
    assert len(set(names)) >= REQUIRED_MIN_STAGES, names
    assert names[0] == "search"
    # Each span carries a non-negative wall-clock duration.
    assert all(s.duration_ms >= 0.0 for s in results.trace.spans())


def test_engine_trace_flag_and_per_call_override():
    engine = KeywordSearchEngine(tiny_bibliographic_db(), trace=True)
    assert engine.search(PARITY_QUERY, k=3, use_cache=False).trace is not None
    # Per-call override wins in both directions.
    assert (
        engine.search(PARITY_QUERY, k=3, use_cache=False, trace=False).trace
        is None
    )
    engine2 = KeywordSearchEngine(tiny_bibliographic_db())
    assert engine2.search(PARITY_QUERY, k=3, use_cache=False).trace is None


def test_profiled_context_manager():
    engine = KeywordSearchEngine(tiny_bibliographic_db())
    with engine.profiled() as profiler:
        engine.search(PARITY_QUERY, k=3, use_cache=False)
        engine.search("levy fagin", k=3, use_cache=False)
    assert engine.trace_enabled is False  # restored
    assert len(profiler) == 2
    totals = profiler.stage_totals()
    assert totals["search"]["calls"] == 2
    assert totals["parse"]["calls"] == 2


# ----------------------------------------------------------------------
# Metrics wiring: engine counters, latency histogram, legacy shim
# ----------------------------------------------------------------------
def test_engine_metrics_snapshot_supersedes_cache_stats():
    engine = KeywordSearchEngine(tiny_bibliographic_db())
    engine.search(PARITY_QUERY, k=3)
    engine.search(PARITY_QUERY, k=3)  # LRU hit
    snap = engine.metrics.snapshot()
    assert snap["query.count"] == 2
    assert snap["query.cache_hits"] == 1
    assert snap["query.latency_ms"]["count"] == 2
    # Callback gauges mirror the legacy counters exactly — no dual-write.
    legacy = engine.cache_stats()
    assert snap["cache.results.hits"] == legacy["results"]["hits"] == 1
    assert snap["cache.results.misses"] == legacy["results"]["misses"] == 1
    assert snap["circuit.state"] == "closed"


def test_xml_engine_metrics():
    engine = XmlSearchEngine(slide_conf_tree())
    engine.search("keyword mark", k=3)
    snap = engine.metrics.snapshot()
    assert snap["query.count"] == 1
    assert snap["query.latency_ms"]["count"] == 1


def test_substrate_build_histograms_recorded():
    engine = KeywordSearchEngine(tiny_bibliographic_db())
    engine.search(PARITY_QUERY, k=3, use_cache=False)
    snap = engine.metrics.snapshot()
    assert snap["substrates.build_ms.tuple_sets"]["count"] >= 1


# ----------------------------------------------------------------------
# Regression 1: single-flight get_or_compute
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_misses_compute_once(self):
        """Pre-fix, N racing misses each ran compute(); now exactly one
        computes and the rest are served the published entry."""
        cache = LRUCache(8)
        computes = []
        barrier = threading.Barrier(6)

        def compute():
            computes.append(1)
            time.sleep(0.05)  # hold the key lock open across the race
            return "value"

        def worker(out):
            barrier.wait()
            out.append(cache.get_or_compute("k", compute))

        served: list = []
        threads = [
            threading.Thread(target=worker, args=(served,)) for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert served == ["value"] * 6
        assert len(computes) == 1
        assert cache.stats.coalesced == 5
        # The first lookups all counted as misses; no phantom hits.
        assert cache.stats.hits + cache.stats.misses == cache.stats.requests

    def test_coalesced_never_counts_as_hit_or_miss(self):
        cache = LRUCache(8)
        cache.get_or_compute("k", lambda: 1)
        before = (cache.stats.hits, cache.stats.misses)
        with cache.key_lock("k"):
            assert cache.peek("k") == 1
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_distinct_keys_do_not_serialize(self):
        cache = LRUCache(8)
        order = []

        def slow(tag):
            order.append(tag)
            time.sleep(0.05)
            return tag

        t = threading.Thread(
            target=lambda: cache.get_or_compute("a", lambda: slow("a"))
        )
        t.start()
        time.sleep(0.01)
        start = time.perf_counter()
        cache.get_or_compute("b", lambda: slow("b"))
        elapsed = time.perf_counter() - start
        t.join()
        # "b"'s own compute sleeps 0.05s; had it also waited for "a"'s
        # key lock it would take ~0.09s (generous CI margin).
        assert elapsed < 0.085
        assert sorted(order) == ["a", "b"]

    def test_engine_concurrent_same_query_computes_once(self):
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        engine.search(PARITY_QUERY, k=3)  # warm substrates, then clear
        engine._result_cache.clear()
        barrier = threading.Barrier(4)
        sigs = []

        def worker():
            barrier.wait()
            sigs.append(result_signature(engine.search(PARITY_QUERY, k=3)))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(s == sigs[0] for s in sigs)
        stats = engine.cache_stats()["results"]
        # Every duplicate miss was coalesced onto the one compute.
        assert stats["misses"] + stats["hits"] + stats["coalesced"] >= 4
        assert stats["misses"] >= 1


# ----------------------------------------------------------------------
# Regression 2: thread-exact cache statistics
# ----------------------------------------------------------------------
def test_cache_stats_exact_under_concurrency():
    """Pre-fix, ``hits += 1`` raced under batch threads and drifted from
    the true lookup count; the locked stats make the ledger exact."""
    cache = LRUCache(256)
    for i in range(16):
        cache.put(i, i)
    probes_per_thread = 500
    n_threads = 8
    barrier = threading.Barrier(n_threads)

    def hammer():
        barrier.wait()
        for i in range(probes_per_thread):
            cache.get(i % 32)  # half hit, half miss

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = n_threads * probes_per_thread
    assert cache.stats.hits + cache.stats.misses == total
    assert cache.stats.requests == total
    expected_hits = n_threads * sum(
        1 for i in range(probes_per_thread) if i % 32 < 16
    )
    assert cache.stats.hits == expected_hits


def test_batch_executor_counts_exact():
    from repro.perf.batch import BatchSearchExecutor

    engine = KeywordSearchEngine(tiny_bibliographic_db())
    executor = BatchSearchExecutor(engine, max_workers=6)
    queries = [PARITY_QUERY, "levy fagin", PARITY_QUERY, "levy fagin"] * 3
    outcomes = executor.run_outcomes(queries, k=3)
    assert len(outcomes) == len(queries)
    stats = executor.stats()
    assert stats["queries_served"] == len(queries)
    # Two distinct queries; every duplicate was deduplicated in-flight,
    # never computed twice.
    assert stats["queries_computed"] == 2
    snap = engine.metrics.snapshot()
    assert snap["batch.queries_served"] == len(queries)
    assert snap["batch.queries_computed"] == 2
    assert snap["batch.duplicates_coalesced"] == len(queries) - 2
    # One latency observation per *computed* query, not per duplicate.
    assert snap["batch.query_ms"]["count"] == 2


# ----------------------------------------------------------------------
# Regression 3: cache hits preserve degradation metadata + trace tag
# ----------------------------------------------------------------------
def test_cache_hit_preserves_degraded_metadata_and_tags_trace():
    """Pre-fix, a ResultSet served from the LRU could drop its
    ``degraded`` markers; the clone must carry them, plus a fresh
    lookup trace tagged ``cache_hit=True`` (never the original
    compute's trace)."""
    engine = KeywordSearchEngine(tiny_bibliographic_db(), trace=True)
    computed = engine.search(PARITY_QUERY, k=3)
    key = engine._query_key(PARITY_QUERY, "schema", 3)
    degraded = ResultSet(
        list(computed),
        method="schema",
        degraded=True,
        degraded_reason="timeout_ms exhausted",
    )
    degraded.trace = computed.trace  # stale compute trace in the cache
    engine._result_cache.put(key, degraded)

    served = engine.search(PARITY_QUERY, k=3)
    assert served.degraded is True
    assert served.degraded_reason == "timeout_ms exhausted"
    # Fresh lookup trace, not the cached computation's span tree.
    assert served.trace is not computed.trace
    lookup = served.trace.find("cache_lookup")
    assert lookup.tags["outcome"] == "hit"
    assert lookup.tags["cache_hit"] is True
    assert served.trace.span_names() == ["search", "cache_lookup"]


def test_clone_never_carries_stored_trace():
    rs = ResultSet(method="schema", degraded=True, degraded_reason="x")
    rs.trace = object()
    clone = rs.clone()
    assert clone.trace is None
    assert clone.degraded and clone.degraded_reason == "x"
