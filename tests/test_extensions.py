"""Tests for the extension modules: IQP, probabilistic XPath building,
SPARK2 partition-graph pruning, the operator mesh, and interconnection
semantics."""

import pytest

from repro.ambiguity.iqp import IqpModel
from repro.datasets.logs import QueryLogEntry
from repro.datasets.xml_corpora import slide_conf_tree, slide_imdb_tree
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.evaluate import all_results
from repro.schema_search.mesh import OperatorMesh
from repro.schema_search.spark2 import (
    PartitionGraph,
    connected_subnetworks,
    evaluate_with_pruning,
    evaluate_without_pruning,
)
from repro.schema_search.tuple_sets import TupleSets
from repro.xml_search.interconnection import (
    interconnected,
    interconnected_answers,
)
from repro.xml_search.probabilistic import ProbabilisticQueryBuilder
from repro.xmltree.index import XmlKeywordIndex


class TestIqp:
    TEMPLATES = {
        "author-write-paper": ["author.name", "paper.title"],
        "paper-conference": ["paper.title", "conference.name"],
    }

    def _log(self):
        return [
            QueryLogEntry(
                ("widom", "xml"),
                (("author.name", "widom"), ("paper.title", "xml")),
                template="author-write-paper",
            ),
            QueryLogEntry(
                ("john", "cloud"),
                (("author.name", "john"), ("paper.title", "cloud")),
                template="author-write-paper",
            ),
            QueryLogEntry(
                ("xml", "sigmod"),
                (("paper.title", "xml"), ("conference.name", "sigmod")),
                template="paper-conference",
            ),
        ]

    def test_template_prior_follows_log(self, tiny_db, tiny_index):
        model = IqpModel(tiny_db, tiny_index, self.TEMPLATES, log=self._log())
        assert model.template_prior("author-write-paper") > model.template_prior(
            "paper-conference"
        )

    def test_uniform_prior_without_log(self, tiny_db, tiny_index):
        model = IqpModel(tiny_db, tiny_index, self.TEMPLATES)
        assert model.template_prior("author-write-paper") == pytest.approx(0.5)

    def test_interpretation_binds_keywords_correctly(self, tiny_db, tiny_index):
        model = IqpModel(tiny_db, tiny_index, self.TEMPLATES, log=self._log())
        top = model.interpret(["widom", "xml"], k=3)[0]
        bindings = dict(top.bindings)
        assert bindings["widom"] == "author.name"
        assert bindings["xml"] == "paper.title"

    def test_data_fallback_binds_without_log(self, tiny_db, tiny_index):
        """Slide 46's 'what if no query log?': data statistics decide."""
        model = IqpModel(tiny_db, tiny_index, self.TEMPLATES)
        top = model.interpret(["widom", "xml"], k=3)[0]
        bindings = dict(top.bindings)
        assert bindings["widom"] == "author.name"

    def test_probabilities_descending(self, tiny_db, tiny_index):
        model = IqpModel(tiny_db, tiny_index, self.TEMPLATES, log=self._log())
        ranked = model.interpret(["xml", "sigmod"], k=5)
        probs = [i.probability for i in ranked]
        assert probs == sorted(probs, reverse=True)


class TestProbabilisticBuilder:
    def test_binding_candidates(self):
        builder = ProbabilisticQueryBuilder(slide_imdb_tree())
        candidates = builder.candidate_bindings("shining")
        assert candidates
        assert candidates[0][0] == "/imdb/movie/name"

    def test_build_combines_keywords_under_anchor(self):
        """Slide 36/47: Q = {shining, 1980} should anchor at the movie."""
        builder = ProbabilisticQueryBuilder(slide_imdb_tree())
        queries = builder.build(["shining", "1980"], k=3)
        assert queries
        top = queries[0]
        assert top.path.startswith("/imdb/movie")
        predicate_keywords = {kw for _, kw in top.predicates}
        assert predicate_keywords == {"shining", "1980"}

    def test_probabilities_positive_and_sorted(self):
        builder = ProbabilisticQueryBuilder(slide_conf_tree())
        queries = builder.build(["keyword", "mark"], k=5)
        probs = [q.probability for q in queries]
        assert all(p > 0 for p in probs)
        assert probs == sorted(probs, reverse=True)

    def test_unmatchable_keyword(self):
        builder = ProbabilisticQueryBuilder(slide_conf_tree())
        assert builder.build(["zebra", "mark"]) == []

    def test_xpath_rendering(self):
        builder = ProbabilisticQueryBuilder(slide_conf_tree())
        queries = builder.build(["mark"], k=1)
        assert "~" in queries[0].xpath()


class TestSpark2:
    @pytest.fixture(scope="class")
    def setup(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        ts = TupleSets(tiny_db, tiny_index, query)
        graph = SchemaGraph(tiny_db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=5)
        return cns, ts

    def test_connected_subnetworks_counts(self, setup):
        cns, _ = setup
        for cn in cns:
            subs = connected_subnetworks(cn)
            codes = {s.canonical_code() for s in subs}
            assert cn.canonical_code() in codes
            assert len(subs) >= cn.size  # at least all single nodes

    def test_partition_graph_containment(self, setup):
        cns, _ = setup
        graph = PartitionGraph(cns)
        for idx, cn in enumerate(cns):
            assert idx in graph.containing(cn.canonical_code())

    def test_pruning_preserves_results(self, setup):
        cns, ts = setup
        pruned = evaluate_with_pruning(cns, ts)
        baseline = evaluate_without_pruning(cns, ts)
        pruned_keys = {
            frozenset(row.tuple_ids()) for _, row in pruned.results
        }
        baseline_keys = {
            frozenset(row.tuple_ids()) for _, row in baseline.results
        }
        assert pruned_keys == baseline_keys

    def test_pruning_saves_evaluations(self, biblio_db, biblio_index):
        query = ["database", "john"]
        ts = TupleSets(biblio_db, biblio_index, query)
        graph = SchemaGraph(biblio_db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=5)
        outcome = evaluate_with_pruning(cns, ts)
        assert outcome.evaluated + outcome.pruned == len(cns)
        # pruning is sound regardless; whether it saves depends on data
        assert outcome.evaluated <= len(cns)

    def test_shared_subexpressions_exist(self, setup):
        cns, _ = setup
        if len(cns) < 2:
            pytest.skip("needs several CNs")
        graph = PartitionGraph(cns)
        assert graph.shared_subexpressions()


class TestOperatorMesh:
    def _stream_setup(self, db, index, query):
        ts = TupleSets(db, index, query)
        graph = SchemaGraph(db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=4)
        return cns, ts

    def test_structural_sharing(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        ts = TupleSets(tiny_db, tiny_index, query)
        graph = SchemaGraph(tiny_db.schema)
        cns = generate_candidate_networks(graph, ts, max_size=5)
        mesh = OperatorMesh(cns, query)
        assert mesh.operator_count <= mesh.total_plan_steps()
        if len(cns) > 1:
            assert mesh.sharing_ratio() < 1.0

    def test_streaming_matches_batch(self, tiny_db, tiny_index):
        """Feeding the whole database through the mesh reproduces batch
        CN evaluation exactly."""
        query = ["widom", "xml"]
        cns, ts = self._stream_setup(tiny_db, tiny_index, query)
        mesh = OperatorMesh(cns, query)
        streamed = set()
        for tid in tiny_db.all_tuple_ids():
            for cn_index, rows in mesh.feed(tiny_db.row(tid)):
                streamed.add(
                    (cn_index, tuple((r.table.name, r.rowid) for r in rows))
                )
        batch = set()
        for cn_index, cn in enumerate(cns):
            from repro.schema_search.evaluate import evaluate_cn

            for joined in evaluate_cn(cn, ts):
                batch.add((cn_index, joined.tuple_ids()))
        assert streamed == batch

    def test_no_duplicate_emissions(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        cns, _ = self._stream_setup(tiny_db, tiny_index, query)
        mesh = OperatorMesh(cns, query)
        emitted = []
        for tid in tiny_db.all_tuple_ids():
            for cn_index, rows in mesh.feed(tiny_db.row(tid)):
                emitted.append(
                    (cn_index, tuple((r.table.name, r.rowid) for r in rows))
                )
        assert len(emitted) == len(set(emitted))

    def test_probe_count_advances(self, tiny_db, tiny_index):
        query = ["widom", "xml"]
        cns, _ = self._stream_setup(tiny_db, tiny_index, query)
        mesh = OperatorMesh(cns, query)
        for tid in tiny_db.all_tuple_ids():
            mesh.feed(tiny_db.row(tid))
        assert mesh.probe_count > 0


class TestInterconnection:
    def test_same_paper_authors_interconnected(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        mark = index.matches("mark")[0]
        chen = index.matches("chen")[0]
        assert interconnected(tree, mark, chen)

    def test_cross_paper_authors_not_interconnected(self):
        """Two authors of different papers: the path passes through two
        distinct 'paper' nodes -> unrelated (XSEarch's core intuition)."""
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        chen = index.matches("chen")[0]  # paper 1 author
        zhang = index.matches("zhang")[0]  # paper 2 author
        assert not interconnected(tree, chen, zhang)

    def test_answers_exclude_cross_paper_combos(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree, match_tags=False)
        lists = index.match_lists(["keyword", "zhang"])
        # "keyword" is in paper 1's title, "zhang" authors paper 2:
        # crossing papers is not interconnected -> no answers.
        assert interconnected_answers(tree, lists) == []

    def test_answers_within_paper(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree, match_tags=False)
        lists = index.match_lists(["keyword", "chen"])
        answers = interconnected_answers(tree, lists)
        assert answers
        root, matches = answers[0]
        node = tree.node_at(root)
        assert node.tag == "paper"

    def test_identity_interconnected(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        mark = index.matches("mark")[0]
        assert interconnected(tree, mark, mark)

    def test_combination_guard(self):
        tree = slide_conf_tree()
        index = XmlKeywordIndex(tree)
        lists = [index.matches("mark")] * 8
        with pytest.raises(ValueError):
            interconnected_answers(tree, lists, max_combinations=4)
