"""Tests for the hot-path serving layer: LRU cache, substrate memos,
cache parity/invalidation, batch execution, and index fast paths."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.index.inverted import InvertedIndex
from repro.perf.batch import BatchQuery, BatchSearchExecutor, as_batch_query
from repro.perf.lru import LRUCache
from repro.perf.substrates import SubstrateCache, normalize_keywords
from repro.relational.database import TupleId

METHODS = ["schema", "banks", "banks2", "steiner", "distinct_root", "ease"]


def result_signature(results):
    """Comparable identity of a result list: scores, labels, tuples."""
    return [(r.score, r.network, tuple(r.tuple_ids())) for r in results]


@pytest.fixture()
def engine():
    return KeywordSearchEngine(tiny_bibliographic_db())


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", "default") == "default"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_is_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # promote a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_capacity_bound(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_get_or_compute(self):
        cache = LRUCache(4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        again = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == again == 42
        assert len(calls) == 1

    def test_clear_counts_invalidation(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_rate(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)


# ----------------------------------------------------------------------
# SubstrateCache
# ----------------------------------------------------------------------
class TestSubstrateCache:
    def test_normalize_keywords(self):
        assert normalize_keywords(["XML", "widom", "xml"]) == ("widom", "xml")

    def test_tuple_sets_reused(self, engine):
        ts1 = engine.substrates.tuple_sets(["widom", "xml"])
        ts2 = engine.substrates.tuple_sets(["xml", "WIDOM"])
        assert ts1 is ts2
        assert engine.substrates.builds["tuple_sets"] == 1

    def test_candidate_networks_reused(self, engine):
        cns1 = engine.substrates.candidate_networks(["widom", "xml"], 4)
        cns2 = engine.substrates.candidate_networks(["xml", "widom"], 4)
        assert cns1 is cns2
        # A different size knob is a different substrate.
        cns3 = engine.substrates.candidate_networks(["widom", "xml"], 3)
        assert cns3 is not cns1

    def test_keyword_groups_and_miss(self, engine):
        groups = engine.substrates.keyword_groups(["widom", "xml"])
        assert groups is not None and all(groups)
        assert engine.substrates.keyword_groups(["widom", "zzzzz"]) is None
        # Inner lists are defensive copies: mutating one must not leak.
        groups[0].clear()
        again = engine.substrates.keyword_groups(["widom", "xml"])
        assert again is not None and again[0]

    def test_mutation_patches_incrementally(self, engine):
        # Insert-only data model: the default reaction to a mutation is
        # an in-place delta patch, not a drop-everything clear.
        ts1 = engine.substrates.tuple_sets(["widom", "xml"])
        engine.db.insert("author", aid=99, name="fresh widom fan", affiliation=None)
        ts2 = engine.substrates.tuple_sets(["widom", "xml"])
        assert ts2 is ts1  # warm substrate survived the write
        assert engine.substrates.invalidations == 0
        patches = engine.substrates.patches
        assert patches["applied"] == 1
        assert patches["index_rows"] == 1
        # ...and the patched substrate sees the new row.
        new_tid = TupleId("author", len(engine.db.table("author")) - 1)
        assert any(
            new_tid in ts2.tuple_ids(key)
            for key in ts2.keys_for_table("author")
        )

    def test_mutation_invalidates_without_incremental(self):
        engine = KeywordSearchEngine(
            tiny_bibliographic_db(), incremental_updates=False
        )
        ts1 = engine.substrates.tuple_sets(["widom", "xml"])
        engine.db.insert("author", aid=99, name="fresh author", affiliation=None)
        ts2 = engine.substrates.tuple_sets(["widom", "xml"])
        assert ts2 is not ts1
        assert engine.substrates.invalidations == 1


# ----------------------------------------------------------------------
# Engine-level caching
# ----------------------------------------------------------------------
class TestSearchCacheParity:
    @pytest.mark.parametrize("method", METHODS)
    def test_cached_equals_uncached(self, engine, method):
        text = "widom xml"
        uncached = engine.search(text, k=5, method=method, use_cache=False)
        first = engine.search(text, k=5, method=method)
        hit = engine.search(text, k=5, method=method)
        assert result_signature(first) == result_signature(uncached)
        assert result_signature(hit) == result_signature(uncached)

    @pytest.mark.parametrize("method", METHODS)
    def test_caches_disabled_engine_parity(self, method):
        db = tiny_bibliographic_db()
        cached_engine = KeywordSearchEngine(db)
        plain_engine = KeywordSearchEngine(db, enable_caches=False)
        text = "john sigmod"
        a = cached_engine.search(text, k=5, method=method)
        b = plain_engine.search(text, k=5, method=method)
        assert result_signature(a) == result_signature(b)

    def test_cache_hit_counted(self, engine):
        engine.search("widom xml", k=5)
        engine.search("widom xml", k=5)
        stats = engine.cache_stats()["results"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_list_is_a_copy(self, engine):
        first = engine.search("widom xml", k=5)
        first.clear()
        again = engine.search("widom xml", k=5)
        assert again  # cache entry not poisoned by caller mutation

    def test_distinct_k_distinct_entries(self, engine):
        engine.search("widom xml", k=1)
        engine.search("widom xml", k=5)
        stats = engine.cache_stats()["results"]
        assert stats["misses"] == 2


class TestInvalidation:
    def test_search_sees_mutation(self, engine):
        before = engine.search("zweig database", k=5)
        assert before == []
        engine.db.insert(
            "author", aid=77, name="stefan zweig", affiliation="database lab"
        )
        after = engine.search("zweig database", k=5)
        assert after, "stale empty result served after mutation"

    def test_refine_terms_sees_mutation(self, engine):
        engine.refine_terms("xml", k=5)
        stats = engine.cache_stats()["refine"]
        assert stats["misses"] == 1
        engine.db.insert("author", aid=78, name="xml xavier", affiliation=None)
        engine.refine_terms("xml", k=5)
        stats = engine.cache_stats()["refine"]
        assert stats["misses"] == 2  # cache was dropped, not served stale

    def test_version_counter_moves(self):
        db = tiny_bibliographic_db()
        v0 = db.data_version
        db.insert("author", aid=55, name="any body", affiliation=None)
        assert db.data_version == v0 + 1


class TestSuggestFormsReuse:
    def test_form_pipeline_object_reuse(self, engine):
        engine.suggest_forms("widom xml")
        _, _, index1 = engine.substrates.form_pipeline(3)
        engine.suggest_forms("john sigmod")
        _, _, index2 = engine.substrates.form_pipeline(3)
        assert index1 is index2, "FormIndex rebuilt instead of reused"
        assert engine.substrates.builds["form_pipeline"] == 1

    def test_suggest_forms_results_stable(self, engine):
        first = engine.suggest_forms("widom xml")
        second = engine.suggest_forms("widom xml")
        assert [str(f) for f in first] == [str(f) for f in second]


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
class TestBatchSearch:
    def test_as_batch_query_coercions(self):
        assert as_batch_query("a b") == BatchQuery("a b", 10, "schema")
        assert as_batch_query(("a", "banks")) == BatchQuery("a", 10, "banks")
        assert as_batch_query(("a", "banks", 3)) == BatchQuery("a", 3, "banks")

    def test_search_many_matches_sequential(self, engine):
        queries = ["widom xml", "john sigmod", ("widom xml", "banks2"), "cloud data"]
        batched = engine.search_many(queries, k=5, max_workers=4)
        assert len(batched) == len(queries)
        expected = [
            engine.search("widom xml", k=5),
            engine.search("john sigmod", k=5),
            engine.search("widom xml", k=5, method="banks2"),
            engine.search("cloud data", k=5),
        ]
        for got, want in zip(batched, expected):
            assert result_signature(got) == result_signature(want)

    def test_duplicates_coalesced(self, engine):
        executor = BatchSearchExecutor(engine, max_workers=4)
        results = executor.run(["widom xml"] * 6, k=5)
        assert len(results) == 6
        assert executor.queries_served == 6
        assert executor.queries_computed == 1
        signatures = {tuple(result_signature(r)) for r in results}
        assert len(signatures) == 1

    def test_empty_batch(self, engine):
        assert engine.search_many([]) == []

    def test_single_worker_path(self, engine):
        executor = BatchSearchExecutor(engine, max_workers=1)
        results = executor.run(["widom xml", "john sigmod"], k=5)
        assert len(results) == 2 and all(r for r in results)

    def test_rejects_zero_workers(self, engine):
        with pytest.raises(ValueError):
            BatchSearchExecutor(engine, max_workers=0)

    def test_concurrent_stress_parity(self):
        # Many workers hammering one engine must agree with sequential.
        engine = KeywordSearchEngine(tiny_bibliographic_db())
        queries = [
            "widom xml",
            "john sigmod",
            ("xml keyword", "banks"),
            ("widom xml", "distinct_root"),
            ("john database", "steiner"),
            ("xml data", "ease"),
        ] * 4
        batched = engine.search_many(queries, k=5, max_workers=8)
        reference = KeywordSearchEngine(tiny_bibliographic_db(), enable_caches=False)
        for query, got in zip(queries, batched):
            bq = as_batch_query(query, k=5)
            want = reference.search(bq.text, k=bq.k, method=bq.method)
            assert result_signature(got) == result_signature(want)


# ----------------------------------------------------------------------
# Index fast paths
# ----------------------------------------------------------------------
class TestIndexFastPaths:
    def test_postings_view_is_immutable(self, tiny_index):
        view = tiny_index.postings("xml")
        assert isinstance(view, tuple) and view
        assert tiny_index.postings("nope") == ()

    def test_matching_tuples_copy_is_safe(self, tiny_index):
        first = tiny_index.matching_tuples("xml")
        first.clear()
        assert tiny_index.matching_tuples("xml")

    def test_matching_view_zero_copy(self, tiny_index):
        v1 = tiny_index.matching_tuples_view("xml")
        v2 = tiny_index.matching_tuples_view("XML")
        assert v1 is v2

    def test_df_matches_distinct_tuples(self, tiny_index):
        for token in ("xml", "keyword", "widom", "join"):
            postings_df = len({p.tid for p in tiny_index.postings(token)})
            assert tiny_index.document_frequency(token) == postings_df

    def test_tf_matches_posting_scan(self, tiny_index):
        for token in ("xml", "keyword", "search"):
            for tid in tiny_index.matching_tuples_view(token):
                scanned = sum(
                    p.frequency for p in tiny_index.postings(token) if p.tid == tid
                )
                assert tiny_index.term_frequency(tid, token) == scanned

    def test_unknown_token_statistics(self, tiny_index):
        assert tiny_index.document_frequency("zzzzz") == 0
        assert tiny_index.term_frequency(TupleId("paper", 0), "zzzzz") == 0
        # Smoothed IDF of an unseen token: ln(N+1) + 1.
        import math

        expected = math.log(tiny_index.document_count + 1) + 1.0
        assert tiny_index.idf("zzzzz") == pytest.approx(expected)

    def test_idf_precomputed_consistent(self, tiny_index):
        import math

        n = tiny_index.document_count
        for token in ("xml", "join", "cloud"):
            df = tiny_index.document_frequency(token)
            assert tiny_index.idf(token) == pytest.approx(
                math.log((n + 1) / (df + 1)) + 1.0
            )
