"""Slide 7's 'expected surprise': Q = {Seltzer, Berkeley}.

University(12, 'UC Berkeley'), Student(6055, 'Margo Seltzer', uid=12)?
No — the tutorial's point is that Seltzer is NOT a student at UC
Berkeley; the correct connection runs through Project(5, 'Berkeley DB')
and Participation(5, 6055).  Keyword search must assemble the scattered
but collectively relevant pieces automatically.
"""

import pytest

from repro.index.inverted import InvertedIndex
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.evaluate import all_results
from repro.schema_search.tuple_sets import TupleSets


@pytest.fixture(scope="module")
def slide7_db():
    schema = Schema(
        [
            TableSchema(
                "university",
                (Column("uid", "int"), Column("uname", "str", text=True)),
                primary_key="uid",
            ),
            TableSchema(
                "student",
                (
                    Column("sid", "int"),
                    Column("sname", "str", text=True),
                    Column("uid", "int", nullable=True),
                ),
                primary_key="sid",
                foreign_keys=(ForeignKey("uid", "university", "uid"),),
            ),
            TableSchema(
                "project",
                (Column("pid", "int"), Column("pname", "str", text=True)),
                primary_key="pid",
            ),
            TableSchema(
                "participation",
                (
                    Column("paid", "int"),
                    Column("pid", "int"),
                    Column("sid", "int"),
                ),
                primary_key="paid",
                foreign_keys=(
                    ForeignKey("pid", "project", "pid"),
                    ForeignKey("sid", "student", "sid"),
                ),
            ),
        ]
    )
    db = Database(schema)
    db.insert("university", uid=12, uname="uc berkeley")
    db.insert("university", uid=13, uname="harvard")
    # Seltzer is affiliated with Harvard, not Berkeley.
    db.insert("student", sid=6055, sname="margo seltzer", uid=13)
    db.insert("project", pid=5, pname="berkeley db")
    db.insert("participation", paid=0, pid=5, sid=6055)
    return db


class TestSlide7:
    def test_scattered_pieces_assembled(self, slide7_db):
        index = InvertedIndex(slide7_db)
        ts = TupleSets(slide7_db, index, ["seltzer", "berkeley"])
        cns = generate_candidate_networks(
            SchemaGraph(slide7_db.schema), ts, max_size=4
        )
        results = all_results(cns, ts)
        assert results
        # The project interpretation must be among the answers:
        found_project = False
        for cn, joined in results:
            tables = {row.table.name for row in joined.rows}
            texts = " ".join(row.text() for row in joined.rows)
            if "project" in tables and "berkeley db" in texts:
                found_project = True
        assert found_project

    def test_no_false_student_at_berkeley(self, slide7_db):
        """No answer may claim Seltzer studies at UC Berkeley: the only
        student-university joining network binds her to Harvard, so any
        result containing both the student and a university must contain
        Harvard, never UC Berkeley."""
        index = InvertedIndex(slide7_db)
        ts = TupleSets(slide7_db, index, ["seltzer", "berkeley"])
        cns = generate_candidate_networks(
            SchemaGraph(slide7_db.schema), ts, max_size=4
        )
        for cn, joined in all_results(cns, ts):
            tables = {row.table.name for row in joined.rows}
            if {"student", "university"} <= tables:
                university = next(
                    row for row in joined.rows if row.table.name == "university"
                )
                assert university["uname"] != "uc berkeley"

    def test_flat_single_tuple_search_finds_nothing(self, slide7_db):
        """The text-search strawman: no single tuple contains both
        keywords, so non-joining search returns nothing — the slide's
        argument for assembling results across tuples."""
        index = InvertedIndex(slide7_db)
        assert index.tuples_matching_all(["seltzer", "berkeley"]) == []
