"""E23 — storage substrates: memory compaction, QPS parity, lazy paging.

Claims (ISSUE 9: pluggable storage backends — compact columnar
substrates + disk-backed inverted index):

1. **Resident memory.**  The columnar substrate (interned token ids,
   delta+varint postings) and the mmap disk segment cut resident index
   memory versus the dict backend; the acceptance gate requires at
   least the minimum compaction ratio on the bibliographic dataset.
2. **Cold-build time.**  Building each backend from scratch is timed;
   compact encodings must not make indexing pathologically slower.
3. **Throughput parity.**  Cold and warm QPS are measured per backend
   over a mixed-method workload.  The gate is *correctness*, not speed:
   every backend's top-k must be byte-identical to the dict backend's
   on every (query, method) pair — zero divergences allowed.
4. **Beyond-RAM behaviour.**  A dataset whose segment spans more pages
   than the configured page cache proves lazy page-in: a cold open
   touches zero pages, the query workload loads pages on demand, and
   the cache never holds more than its capacity.

Runnable under pytest or as a script emitting ``BENCH_storage.json``:

    PYTHONPATH=src python benchmarks/bench_storage.py [--smoke] \
        [--out BENCH_storage.json]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.storage import BACKEND_NAMES
from repro.storage.diskstore import DiskBackend

#: (query, method) pairs: cheap methods dominate so the benchmark stays
#: fast, but the parity gate still crosses three search families.
WORKLOAD: List[Tuple[str, str]] = [
    ("john xml", "schema"),
    ("widom xml", "schema"),
    ("database keyword", "schema"),
    ("xml keyword", "index_only"),
    ("john conference", "index_only"),
    ("john sigmod", "banks"),
]


def _signature(results) -> bytes:
    payload = [
        [repr(r.score), r.network, [str(t) for t in r.tuple_ids()]]
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _options(name: str, workdir: str) -> Optional[Dict[str, object]]:
    if name == "disk":
        return {"path": os.path.join(workdir, f"bench-{name}.rkws")}
    return None


def measure_backend(
    name: str, db, workdir: str
) -> Tuple[Dict[str, object], Dict[Tuple[str, str], bytes]]:
    """Build one backend, time it, run the workload cold and warm."""
    start = time.perf_counter()
    engine = KeywordSearchEngine(
        db, backend=name, backend_options=_options(name, workdir)
    )
    _ = engine.index  # force the build
    build_s = time.perf_counter() - start

    resident = engine.index.resident_bytes()

    signatures: Dict[Tuple[str, str], bytes] = {}
    start = time.perf_counter()
    for query, method in WORKLOAD:
        signatures[(query, method)] = _signature(
            engine.search(query, k=10, method=method)
        )
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    for query, method in WORKLOAD:
        engine.search(query, k=10, method=method)
    warm_s = time.perf_counter() - start

    report = {
        "backend": name,
        "build_s": round(build_s, 4),
        "resident_bytes": resident,
        "cold_qps": round(len(WORKLOAD) / cold_s, 1) if cold_s else None,
        "warm_qps": round(len(WORKLOAD) / warm_s, 1) if warm_s else None,
        "storage_stats": _jsonable(engine.index.storage_stats()),
    }
    engine.index.close()
    return report, signatures


def _jsonable(obj):
    """Stats dicts may contain tuples/sets; normalise for json.dumps."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [_jsonable(v) for v in obj]
    return obj


def measure_lazy_paging(db) -> Dict[str, object]:
    """Disk segment wider than the page cache: prove lazy page-in."""
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as workdir:
        path = os.path.join(workdir, "paged.rkws")
        # Tiny pages + tiny cache force the segment well past capacity.
        build = DiskBackend(path=path, page_size=1024, cache_pages=4, hot_tokens=8)
        build.build(db)
        total_pages = build.stats()["segment_pages"]
        build._unmap()

        backend = DiskBackend(path=path, page_size=1024, cache_pages=4, hot_tokens=8)
        start = time.perf_counter()
        backend.build(db)  # cold open: reuses the segment on disk
        open_s = time.perf_counter() - start
        reused = backend.stats()["reused_segment"]
        pages_after_open = backend.stats()["page_cache"]["pages_ever_loaded"]

        probe = backend.vocabulary()[:40]
        for token in probe:
            backend.matching_view(token)
        cache = backend.stats()["page_cache"]
        out = {
            "segment_pages": total_pages,
            "cache_capacity": 4,
            "cold_open_s": round(open_s, 4),
            "reused_segment": bool(reused),
            "pages_loaded_at_open": pages_after_open,
            "pages_loaded_after_probes": cache["pages_ever_loaded"],
            "resident_pages": cache["resident_pages"],
            "probed_tokens": len(probe),
        }
        backend.close()
        return out


def run_storage_benchmark(smoke: bool = False) -> Dict[str, object]:
    if smoke:
        db = generate_bibliographic_db(
            n_authors=30, n_conferences=5, n_papers=100, seed=7
        )
        paged_db = db
        ratio_min = 2.0
    else:
        db = generate_bibliographic_db(
            n_authors=150, n_conferences=12, n_papers=600, seed=7
        )
        paged_db = db
        ratio_min = 3.0

    backends: Dict[str, Dict[str, object]] = {}
    signatures: Dict[str, Dict[Tuple[str, str], bytes]] = {}
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as workdir:
        for name in BACKEND_NAMES:
            backends[name], signatures[name] = measure_backend(
                name, db, workdir
            )

    divergences = 0
    for name in BACKEND_NAMES:
        if name == "dict":
            continue
        for pair, sig in signatures["dict"].items():
            if signatures[name][pair] != sig:
                divergences += 1

    dict_bytes = backends["dict"]["resident_bytes"]
    ratios = {
        name: round(dict_bytes / backends[name]["resident_bytes"], 2)
        for name in BACKEND_NAMES
        if name != "dict"
    }

    paging = measure_lazy_paging(paged_db)

    acceptance = {
        "memory_ratio_min": ratio_min,
        "memory_ratio_columnar": ratios["columnar"],
        "memory_ratio_disk": ratios["disk"],
        "divergences": divergences,
        "lazy_page_in": bool(
            paging["pages_loaded_at_open"] == 0
            and 0
            < paging["pages_loaded_after_probes"]
            <= paging["segment_pages"]
            and paging["resident_pages"] <= paging["cache_capacity"]
            and paging["segment_pages"] > paging["cache_capacity"]
            and paging["reused_segment"]
        ),
    }
    acceptance["pass"] = bool(
        acceptance["memory_ratio_columnar"] >= ratio_min
        and acceptance["memory_ratio_disk"] >= ratio_min
        and divergences == 0
        and acceptance["lazy_page_in"]
    )

    return {
        "benchmark": "storage",
        "smoke": smoke,
        "dataset": {"rows": db.size()},
        "workload": [list(pair) for pair in WORKLOAD],
        "backends": backends,
        "memory_ratios_vs_dict": ratios,
        "paging": paging,
        "acceptance": acceptance,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_storage_benchmark_smoke():
    report = run_storage_benchmark(smoke=True)
    assert report["acceptance"]["divergences"] == 0
    assert report["acceptance"]["pass"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", default="BENCH_storage.json")
    args = parser.parse_args(argv)
    report = run_storage_benchmark(smoke=args.smoke)
    from datetime import datetime, timezone

    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    print(
        f"memory ratios vs dict: columnar "
        f"{acceptance['memory_ratio_columnar']}x, disk "
        f"{acceptance['memory_ratio_disk']}x (min "
        f"{acceptance['memory_ratio_min']}x)"
    )
    print(
        f"divergences: {acceptance['divergences']}, lazy page-in: "
        f"{acceptance['lazy_page_in']}"
    )
    print(f"storage acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
