"""E6 — ELCA computation (slide 140).

Claim: the candidate+verify strategy (Index-Stack family,
O(k·d·|Smin|·log|Smax|)) beats the full-tree DIL-style baseline
(O(k·d·N)) when keyword lists are small relative to the document.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.xml_search.elca import elca_bruteforce, elca_candidates_verify


def _query(index):
    sizes = sorted((index.list_size(t), t) for t in index.vocabulary)
    rare = next(t for s, t in sizes if s >= 2)
    mid = sizes[len(sizes) // 2][1]
    return [rare, mid]


def test_bruteforce(benchmark, bib_xml, bib_xml_index):
    keywords = _query(bib_xml_index)
    result = benchmark(elca_bruteforce, bib_xml, keywords)
    assert result == elca_candidates_verify(bib_xml_index.match_lists(keywords))


def test_candidates_verify(benchmark, bib_xml, bib_xml_index):
    keywords = _query(bib_xml_index)
    lists = bib_xml_index.match_lists(keywords)
    result = benchmark(elca_candidates_verify, lists)
    assert result == elca_bruteforce(bib_xml, keywords)


def test_shape(benchmark, bib_xml, bib_xml_index):
    keywords = _query(bib_xml_index)
    lists = bib_xml_index.match_lists(keywords)
    start = time.perf_counter()
    for _ in range(20):
        elca_bruteforce(bib_xml, keywords)
    brute = (time.perf_counter() - start) / 20
    start = time.perf_counter()
    for _ in range(20):
        out = elca_candidates_verify(lists)
    verify = (time.perf_counter() - start) / 20
    benchmark(elca_candidates_verify, lists)
    print_table(
        f"E6: ELCA (N={bib_xml.subtree_size()} nodes, "
        f"lists={[len(l) for l in lists]})",
        ["algorithm", "mean_time", "#ELCAs"],
        [
            ("DIL-style full traversal", f"{brute * 1e3:.2f}ms", len(out)),
            ("candidates+verify", f"{verify * 1e3:.2f}ms", len(out)),
        ],
    )
    assert verify <= brute  # index-based wins on selective lists
