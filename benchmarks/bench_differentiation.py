"""E10 — result differentiation (slides 149-153).

Claims: the greedy local-search feature selection achieves a higher
Degree of Difference than the top-frequency and random baselines; the
deep (pair-swap) variant is at least as good as single-swap.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.analysis.differentiation import (
    FeatureSet,
    degree_of_difference,
    select_features_greedy,
    select_features_random,
    select_features_top_frequency,
)
from repro.index.text import tokenize


def _feature_sets(db, n_results=8, seed=5):
    """Results = conferences; features = their papers' title terms."""
    rng = random.Random(seed)
    sets = []
    for conf in list(db.rows("conference"))[:n_results]:
        features = [("conf:year", str(conf["year"]))]
        papers = db.table("paper").lookup("cid", conf.key)
        for paper in papers:
            for token in tokenize(paper["title"]):
                features.append(("paper:title", token))
        sets.append(FeatureSet.of(conf["name"] + str(conf["year"]), features))
    return sets


BUDGET = 3


def _dod(sets):
    return degree_of_difference([fs.selected for fs in sets])


def test_greedy(benchmark, biblio_db):
    sets = _feature_sets(biblio_db)
    benchmark(select_features_greedy, sets, BUDGET)
    assert _dod(sets) > 0


def test_shape(benchmark, biblio_db):
    outcomes = {}
    for name, select in [
        ("random", lambda s: select_features_random(s, BUDGET, seed=1)),
        ("top-frequency", lambda s: select_features_top_frequency(s, BUDGET)),
        ("greedy (weak local opt)", lambda s: select_features_greedy(s, BUDGET)),
        ("greedy-deep (pair swaps)", lambda s: select_features_greedy(s, BUDGET, deep=True)),
    ]:
        sets = _feature_sets(biblio_db)
        select(sets)
        outcomes[name] = _dod(sets)
    benchmark(select_features_greedy, _feature_sets(biblio_db), BUDGET)
    rows = [(name, dod) for name, dod in outcomes.items()]
    print_table(f"E10: Degree of Difference (budget={BUDGET})",
                ["selection", "DoD"], rows)
    assert outcomes["greedy (weak local opt)"] >= outcomes["top-frequency"]
    assert outcomes["greedy-deep (pair swaps)"] >= outcomes["greedy (weak local opt)"]
    assert outcomes["greedy (weak local opt)"] >= outcomes["random"]
