"""E18 — result semantics: distinct root vs distinct core vs EASE
(slides 31, 128).

Claims: distinct-root inflates the answer list relative to distinct
cores (many roots per match combination); r-radius *Steiner* subgraphs
contain fewer "unnecessary nodes" than the raw r-radius balls they come
from.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.graph_search.ease import r_radius_steiner_graphs
from repro.graph_search.semantics import (
    distinct_core_results,
    distinct_root_results,
)

QUERY = ["query", "john"]
DMAX = 4.0


@pytest.fixture(scope="module")
def groups(biblio_index):
    gs = [biblio_index.matching_tuples(k) for k in QUERY]
    assert all(gs)
    return gs


def test_distinct_root(benchmark, biblio_graph, groups):
    answers = benchmark(distinct_root_results, biblio_graph, groups, DMAX)
    assert answers


def test_distinct_core(benchmark, biblio_graph, groups):
    answers = benchmark(distinct_core_results, biblio_graph, groups, DMAX)
    assert answers


def test_dedup_shape(benchmark, biblio_graph, groups):
    roots = distinct_root_results(biblio_graph, groups, dmax=DMAX)
    cores = distinct_core_results(biblio_graph, groups, dmax=DMAX)
    benchmark(distinct_core_results, biblio_graph, groups, DMAX)
    print_table(
        f"E18a: answer-list sizes (Q={' '.join(QUERY)}, Dmax={DMAX})",
        ["semantics", "#answers"],
        [
            ("distinct root", len(roots)),
            ("distinct core", len(cores)),
        ],
    )
    assert len(roots) >= len(cores)
    # Cores are unique combinations.
    assert len({c.core for c in cores}) == len(cores)


def test_ease_steiner_reduction(benchmark, biblio_graph, groups):
    r = 3
    answers = benchmark(r_radius_steiner_graphs, biblio_graph, groups, r, 20)
    assert answers
    rows = []
    shrunk = 0
    for answer in answers[:8]:
        ball = len(biblio_graph.bfs_hops(answer.center, max_hops=r))
        rows.append((str(answer.center), ball, answer.size()))
        if answer.size() < ball:
            shrunk += 1
    print_table(
        f"E18b: r-radius ball vs Steiner reduction (r={r})",
        ["center", "ball_nodes", "steiner_nodes"],
        rows,
    )
    assert shrunk >= len(rows) // 2  # reduction removes unnecessary nodes
