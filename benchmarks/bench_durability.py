"""E22 — durability: WAL throughput, snapshot cost, verified recovery.

Claims (ISSUE 7: durable mutation log, atomic snapshots, verified crash
recovery):

1. **Insert throughput per fsync policy.**  The WAL's ``always`` /
   ``interval`` / ``never`` policies trade durability for inserts/sec;
   the benchmark records all three so the trajectory is visible.
2. **Snapshot overhead.**  Committing an atomic snapshot of the
   bibliographic dataset costs milliseconds and bytes both reported.
3. **Recovery scales with WAL length.**  Recovery time is measured for
   growing WAL suffixes; every replayed count must equal the suffix
   length exactly.
4. **Byte-identity gate.**  After close-and-recover, every search
   method returns results byte-identical to an engine that never went
   down, and ``fsck`` reports zero inconsistencies.  This is the
   acceptance bar — a perf number from a wrong engine is worthless.

Runnable under pytest or as a script emitting ``BENCH_durability.json``:

    PYTHONPATH=src python benchmarks/bench_durability.py [--smoke] \
        [--out BENCH_durability.json]
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import (
    generate_bibliographic_db,
    tiny_bibliographic_db,
)
from repro.durability import DurableEngine

#: (query, method) pairs covering every search family the engine serves.
IDENTITY_WORKLOAD: List[Tuple[str, str]] = [
    ("john xml", "schema"),
    ("widom xml", "schema"),
    ("grace durable", "schema"),
    ("john sigmod", "banks"),
    ("widom xml", "banks2"),
    ("john xml", "steiner"),
    ("widom xml", "distinct_root"),
    ("john sigmod", "ease"),
    ("xml keyword", "index_only"),
]


def _signature(results) -> bytes:
    """Canonical byte serialisation of a relational ResultSet."""
    payload = [
        [repr(r.score), r.network, [str(t) for t in r.tuple_ids()]]
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _new_author(i: int) -> Dict[str, object]:
    return {
        "aid": 100000 + i,
        "name": f"durable author{i}",
        "affiliation": f"wal institute {i % 7}",
    }


def measure_insert_throughput(n_inserts: int) -> Dict[str, object]:
    """Durable inserts/sec for each fsync policy (fresh log each run)."""
    out: Dict[str, object] = {"inserts": n_inserts, "policies": {}}
    for policy in ("always", "interval", "never"):
        root = tempfile.mkdtemp(prefix=f"bench-wal-{policy}-")
        try:
            engine = DurableEngine(
                KeywordSearchEngine(tiny_bibliographic_db()),
                root,
                fsync=policy,
                fsync_interval=32,
            )
            start = time.perf_counter()
            for i in range(n_inserts):
                engine.insert("author", **_new_author(i))
            elapsed = time.perf_counter() - start
            engine.close()
            out["policies"][policy] = {
                "wall_s": round(elapsed, 6),
                "inserts_per_s": round(n_inserts / elapsed, 1),
                "wal_bytes": engine.wal.stats()["bytes"],
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return out


def measure_snapshot_overhead() -> Dict[str, object]:
    """Cost of committing one snapshot of the generated biblio dataset."""
    root = tempfile.mkdtemp(prefix="bench-snap-")
    try:
        db = generate_bibliographic_db(seed=7)
        engine = DurableEngine(
            KeywordSearchEngine(db), root, bootstrap_snapshot=False
        )
        start = time.perf_counter()
        info = engine.snapshot()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        engine.close()
        return {
            "rows": info.rows,
            "build_commit_ms": round(elapsed_ms, 3),
            "snapshot_bytes": os.path.getsize(info.data_path),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def measure_recovery_scaling(wal_lengths: List[int]) -> Dict[str, object]:
    """Recovery time as the replayed WAL suffix grows."""
    points = []
    ok = True
    for length in wal_lengths:
        root = tempfile.mkdtemp(prefix="bench-recover-")
        try:
            engine = DurableEngine(
                KeywordSearchEngine(tiny_bibliographic_db()), root
            )
            for i in range(length):
                engine.insert("author", **_new_author(i))
            engine.close()
            start = time.perf_counter()
            recovered, result = DurableEngine.recover(root)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            recovered.close()
            ok = ok and result.replayed == length
            points.append(
                {
                    "wal_records": length,
                    "replayed": result.replayed,
                    "recovery_ms": round(elapsed_ms, 3),
                }
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return {"points": points, "replay_counts_exact": ok}


def measure_byte_identity(k: int = 5) -> Dict[str, object]:
    """Recovered engine vs never-crashed engine across every method."""
    root = tempfile.mkdtemp(prefix="bench-identity-")
    try:
        mutations = [
            ("author", {"aid": 10, "name": "grace hopper", "affiliation": "yale"}),
            (
                "paper",
                {
                    "pid": 10,
                    "title": "durable keyword search",
                    "abstract": "wal and snapshots",
                    "cid": 0,
                },
            ),
            ("write", {"wid": 10, "aid": 10, "pid": 10}),
        ]
        engine = DurableEngine(
            KeywordSearchEngine(tiny_bibliographic_db()), root
        )
        for table, values in mutations:
            engine.insert(table, **values)
        engine.close()

        reference_db = tiny_bibliographic_db()
        for table, values in mutations:
            reference_db.insert(table, **values)
        reference = KeywordSearchEngine(reference_db)

        recovered, result = DurableEngine.recover(root)
        divergence = 0
        for query, method in IDENTITY_WORKLOAD:
            got = _signature(recovered.search(query, k=k, method=method))
            want = _signature(reference.search(query, k=k, method=method))
            if got != want:
                divergence += 1
        report = recovered.fsck()
        recovered.close()
        return {
            "queries": len(IDENTITY_WORKLOAD),
            "replayed": result.replayed,
            "divergence": divergence,
            "fsck_problems": len(report.problems),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_durability_benchmark(smoke: bool = False) -> Dict[str, object]:
    """Full benchmark; the dict becomes ``BENCH_durability.json``."""
    n_inserts = 200 if smoke else 1000
    wal_lengths = [50, 200] if smoke else [100, 400, 1600]

    throughput = measure_insert_throughput(n_inserts)
    snapshot = measure_snapshot_overhead()
    recovery = measure_recovery_scaling(wal_lengths)
    identity = measure_byte_identity()

    passed = (
        identity["divergence"] == 0
        and identity["fsck_problems"] == 0
        and bool(recovery["replay_counts_exact"])
    )
    return {
        "benchmark": "durability",
        "smoke": smoke,
        "insert_throughput": throughput,
        "snapshot": snapshot,
        "recovery": recovery,
        "byte_identity": identity,
        "acceptance": {
            "divergence": identity["divergence"],
            "fsck_problems": identity["fsck_problems"],
            "replay_counts_exact": recovery["replay_counts_exact"],
            "pass": passed,
        },
    }


# ----------------------------------------------------------------------
# pytest entry points (correctness claims only; no timing bounds)
# ----------------------------------------------------------------------
def test_recovered_engine_byte_identity():
    stats = measure_byte_identity()
    assert stats["divergence"] == 0
    assert stats["fsck_problems"] == 0


def test_recovery_replays_exact_counts():
    stats = measure_recovery_scaling([20, 60])
    assert stats["replay_counts_exact"]


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse
    from datetime import datetime, timezone

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller insert batches and fewer WAL-length points (CI gate)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_durability.json"),
        help="output JSON path (default: repo root BENCH_durability.json)",
    )
    args = parser.parse_args(argv)

    report = run_durability_benchmark(smoke=args.smoke)
    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    policies = report["insert_throughput"]["policies"]
    print(
        "inserts/sec: "
        + ", ".join(
            f"{name}={stats['inserts_per_s']}" for name, stats in policies.items()
        )
    )
    print(
        f"snapshot: {report['snapshot']['rows']} rows in "
        f"{report['snapshot']['build_commit_ms']} ms "
        f"({report['snapshot']['snapshot_bytes']} bytes)"
    )
    for point in report["recovery"]["points"]:
        print(
            f"recovery: {point['wal_records']} WAL records replayed in "
            f"{point['recovery_ms']} ms"
        )
    print(
        f"byte identity: divergence={acceptance['divergence']}, "
        f"fsck problems={acceptance['fsck_problems']}"
    )
    print(f"acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
