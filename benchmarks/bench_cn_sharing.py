"""E20 — shared-execution CN engine: join sharing, parallel groups,
incremental index maintenance.

Claims (slides 129-134, operator-level sharing across a query's CNs;
PAPERS.md: DISCOVER, Markowetz+ SIGMOD 07):

1. Evaluating a query's CN list through one
   :class:`~repro.schema_search.evaluate.SharedCNEvaluator` executes
   >= 1.5x fewer hash joins than standalone per-CN evaluation on the
   bibliographic workload (aggregate ``JoinStats.joins_executed``),
   with no wall-clock regression and *byte-identical* top-k results.
2. Parallel shared evaluation (sharing-aware plan groups on a worker
   pool) returns byte-identical top-k results to the sequential run.
3. After a single-row insert, the incremental index refresh is >= 5x
   faster than a full rebuild, and an engine served by the patched
   index returns results identical to a freshly built engine.

Runnable under pytest (shape claims with conservative margins) or as a
script emitting ``BENCH_cn_sharing.json``:

    PYTHONPATH=src python benchmarks/bench_cn_sharing.py \
        [--dataset biblio|products|all] [--out BENCH_cn_sharing.json]
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.datasets.products import generate_product_db
from repro.index.inverted import InvertedIndex
from repro.relational.executor import JoinStats
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.evaluate import all_results, all_results_shared
from repro.schema_search.topk import topk_naive, topk_shared
from repro.schema_search.tuple_sets import TupleSets

# Multi-keyword workloads drawn from the generators' word pools, so
# most queries enumerate several CNs — the regime operator sharing is
# for (single-CN queries share nothing and must not regress).
BIBLIO_QUERIES: List[List[str]] = [
    ["database", "query"],
    ["xml", "query"],
    ["xml", "keyword"],
    ["smith", "database"],
    ["john", "database"],
    ["xml", "index"],
    ["keyword", "search"],
    ["chen", "mining"],
    ["widom", "xml"],
    ["query", "join"],
]

PRODUCT_QUERIES: List[List[str]] = [
    ["lenovo", "laptop"],
    ["ibm", "heritage"],
    ["light", "laptop"],
    ["apple", "mac"],
    ["cheap", "tablet"],
    ["small", "monitor"],
]

DATASETS: Dict[str, Tuple[Callable[[], object], List[List[str]]]] = {
    "biblio": (lambda: generate_bibliographic_db(seed=7), BIBLIO_QUERIES),
    "products": (lambda: generate_product_db(seed=13), PRODUCT_QUERIES),
}

MAX_CN_SIZE = 4


def _timed(fn: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _topk_signature(result) -> bytes:
    """Canonical byte serialisation of a TopKResult's result list."""
    payload = [
        [round(score, 9), label, [list(t) for t in joined.tuple_ids()]]
        for score, label, joined in result.results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _query_substrates(db, index, schema_graph, keywords):
    tuple_sets = TupleSets(db, index, keywords)
    cns = generate_candidate_networks(
        schema_graph, tuple_sets, max_size=MAX_CN_SIZE
    )
    return tuple_sets, cns


def measure_join_sharing(
    db_factory: Callable[[], object],
    queries: Sequence[List[str]],
    k: int = 10,
    repeats: int = 5,
) -> Dict[str, object]:
    """Aggregate unshared vs shared evaluation over a query workload.

    Join counts and result parity come from one instrumented pass per
    query; wall-clock is best-of-``repeats`` over the whole workload
    after a warm-up round, which keeps scheduler noise out of the
    shared/unshared ratio (both passes reuse the same substrates, so
    only the evaluators are under the clock).
    """
    db = db_factory()
    index = InvertedIndex(db)
    schema_graph = SchemaGraph(db.schema)
    substrates = [
        _query_substrates(db, index, schema_graph, keywords)
        for keywords in queries
    ]

    unshared = JoinStats()
    shared = JoinStats()
    topk_identical = True
    parallel_identical = True
    cn_total = 0
    per_query: List[Dict[str, object]] = []

    for keywords, (tuple_sets, cns) in zip(queries, substrates):
        cn_total += len(cns)

        q_unshared = JoinStats()
        baseline = all_results(cns, tuple_sets, stats=q_unshared)
        unshared.merge(q_unshared)

        q_shared = JoinStats()
        shared_out = all_results_shared(cns, tuple_sets, stats=q_shared)
        shared.merge(q_shared)

        # Same multiset of joining networks, CN by CN.
        baseline_ids = sorted(
            (cn.canonical_code(), tuple(j.tuple_ids())) for cn, j in baseline
        )
        shared_ids = sorted(
            (cn.canonical_code(), tuple(j.tuple_ids())) for cn, j in shared_out
        )
        results_equal = baseline_ids == shared_ids

        # Byte-identical top-k: naive vs shared vs shared-parallel.
        naive_sig = _topk_signature(topk_naive(cns, tuple_sets, index, keywords, k=k))
        seq_sig = _topk_signature(
            topk_shared(cns, tuple_sets, index, keywords, k=k)
        )
        par_sig = _topk_signature(
            topk_shared(cns, tuple_sets, index, keywords, k=k, max_workers=4)
        )
        topk_identical = topk_identical and naive_sig == seq_sig and results_equal
        parallel_identical = parallel_identical and seq_sig == par_sig

        per_query.append(
            {
                "query": " ".join(keywords),
                "cns": len(cns),
                "joins_unshared": q_unshared.joins_executed,
                "joins_shared": q_shared.joins_executed,
                "reuse_hits": q_shared.reuse_hits,
            }
        )

    def _workload_pass(fn: Callable) -> None:
        for tuple_sets, cns in substrates:
            fn(cns, tuple_sets, stats=JoinStats())

    unshared_s = min(
        _timed(lambda: _workload_pass(all_results))[0] for _ in range(repeats)
    )
    shared_s = min(
        _timed(lambda: _workload_pass(all_results_shared))[0]
        for _ in range(repeats)
    )

    reduction = (
        unshared.joins_executed / shared.joins_executed
        if shared.joins_executed
        else float("inf")
    )
    return {
        "queries": len(queries),
        "candidate_networks": cn_total,
        "joins_unshared": unshared.joins_executed,
        "joins_shared": shared.joins_executed,
        "join_reduction": round(reduction, 2),
        "reuse_hits": shared.reuse_hits,
        "joins_saved": shared.joins_saved,
        "subexpressions_materialized": shared.subexpressions_materialized,
        "unshared_wall_s": round(unshared_s, 6),
        "shared_wall_s": round(shared_s, 6),
        "wall_ratio": round(shared_s / unshared_s, 3) if unshared_s else 1.0,
        "topk_byte_identical": topk_identical,
        "parallel_byte_identical": parallel_identical,
        "per_query": per_query,
    }


def measure_incremental_update(
    db_factory: Callable[[], object],
    table: str,
    row_factory: Callable[[int], Dict[str, object]],
    probe_query: str,
    repeats: int = 3,
) -> Dict[str, object]:
    """Single-row insert: delta refresh vs full index rebuild.

    Each repeat inserts one fresh row, times ``index.refresh()`` on the
    warm index, then times a from-scratch :class:`InvertedIndex` build
    over the same (grown) database.  Best-of-``repeats`` on both sides
    keeps scheduler noise out of the ratio.
    """
    db = db_factory()
    index = InvertedIndex(db)
    refresh_times: List[float] = []
    rebuild_times: List[float] = []
    for attempt in range(repeats):
        db.insert(table, **row_factory(attempt))
        elapsed, patched = _timed(index.refresh)
        assert patched == 1
        refresh_times.append(elapsed)
        elapsed, _ = _timed(lambda: InvertedIndex(db))
        rebuild_times.append(elapsed)
    best_refresh = min(refresh_times)
    best_rebuild = min(rebuild_times)

    # Engine-level parity: a warm engine absorbing the insert through
    # the incremental path must answer like a freshly built engine.
    warm_db = db_factory()
    warm = KeywordSearchEngine(warm_db)
    warm.search(probe_query, k=5)  # fill substrates pre-insert
    warm_db.insert(table, **row_factory(99))
    warm_results = warm.search(probe_query, k=5)
    fresh = KeywordSearchEngine(warm_db, enable_caches=False)
    fresh_results = fresh.search(probe_query, k=5)
    signature = lambda rs: [
        (round(r.score, 9), r.network, tuple(r.tuple_ids())) for r in rs
    ]
    identical = signature(warm_results) == signature(fresh_results)

    return {
        "repeats": repeats,
        "refresh_best_ms": round(1e3 * best_refresh, 4),
        "rebuild_best_ms": round(1e3 * best_rebuild, 4),
        "incremental_speedup": round(best_rebuild / best_refresh, 2)
        if best_refresh
        else float("inf"),
        "patches_applied": warm.substrates.patches["applied"],
        "search_results_identical": identical,
    }


def run_cn_sharing_benchmark(dataset: str = "all") -> Dict[str, object]:
    """Full benchmark; the dict becomes ``BENCH_cn_sharing.json``."""
    names = list(DATASETS) if dataset == "all" else [dataset]
    report: Dict[str, object] = {"benchmark": "cn_sharing", "datasets": {}}
    for name in names:
        factory, queries = DATASETS[name]
        report["datasets"][name] = {
            "sharing": measure_join_sharing(factory, queries)
        }
    report["incremental"] = measure_incremental_update(
        lambda: generate_bibliographic_db(seed=7),
        "author",
        lambda i: {
            "aid": 9000 + i,
            "name": f"incremental author {i}",
            "affiliation": "delta lab",
        },
        probe_query="database query",
    )

    anchor = "biblio" if "biblio" in report["datasets"] else names[0]
    sharing = report["datasets"][anchor]["sharing"]
    incremental = report["incremental"]
    # The speed bars only bind when the workload actually executes
    # joins: a join-free schema (products is one wide table, no FKs)
    # still exercises the parity claims, but its sub-millisecond wall
    # times are pure scheduler noise.
    measurable = sharing["joins_unshared"] >= 20
    parity_ok = (
        sharing["topk_byte_identical"] and sharing["parallel_byte_identical"]
    )
    speed_ok = (
        sharing["join_reduction"] >= 1.5 and sharing["wall_ratio"] <= 1.1
        if measurable
        else True
    )
    report["acceptance"] = {
        "anchor_dataset": anchor,
        "joins_measurable": measurable,
        "join_reduction": sharing["join_reduction"],
        "join_reduction_min": 1.5,
        "wall_ratio": sharing["wall_ratio"],
        "wall_ratio_max": 1.1,
        "topk_byte_identical": sharing["topk_byte_identical"],
        "parallel_byte_identical": sharing["parallel_byte_identical"],
        "incremental_speedup": incremental["incremental_speedup"],
        "incremental_speedup_min": 5.0,
        "incremental_results_identical": incremental["search_results_identical"],
        "pass": (
            parity_ok
            and speed_ok
            and incremental["incremental_speedup"] >= 5.0
            and incremental["search_results_identical"]
        ),
    }
    return report


# ----------------------------------------------------------------------
# pytest entry points (shape claims, conservative margins)
# ----------------------------------------------------------------------
def test_join_sharing_reduction():
    from benchmarks.conftest import print_table

    stats = measure_join_sharing(
        lambda: generate_bibliographic_db(seed=7), BIBLIO_QUERIES
    )
    print_table(
        "E20a CN sharing: unshared vs shared joins (biblio)",
        ["mode", "joins", "wall_s"],
        [
            ["per-CN standalone", stats["joins_unshared"], stats["unshared_wall_s"]],
            ["shared evaluator", stats["joins_shared"], stats["shared_wall_s"]],
        ],
    )
    assert stats["topk_byte_identical"]
    assert stats["parallel_byte_identical"]
    assert stats["join_reduction"] >= 1.5


def test_incremental_update_speedup():
    from benchmarks.conftest import print_table

    stats = measure_incremental_update(
        lambda: generate_bibliographic_db(seed=7),
        "author",
        lambda i: {
            "aid": 9000 + i,
            "name": f"incremental author {i}",
            "affiliation": "delta lab",
        },
        probe_query="database query",
    )
    print_table(
        "E20b incremental index: refresh vs rebuild (1-row insert)",
        ["path", "best_ms"],
        [
            ["delta refresh", stats["refresh_best_ms"]],
            ["full rebuild", stats["rebuild_best_ms"]],
        ],
    )
    assert stats["search_results_identical"]
    assert stats["incremental_speedup"] >= 5.0


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse
    import os
    import sys
    from datetime import datetime, timezone

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset", default="all", choices=["all", *DATASETS]
    )
    parser.add_argument(
        "--out",
        default=os.path.join(repo_root, "BENCH_cn_sharing.json"),
        help="output JSON path (default: repo root BENCH_cn_sharing.json)",
    )
    args = parser.parse_args(argv)

    report = run_cn_sharing_benchmark(dataset=args.dataset)
    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    print(
        f"join reduction ({acceptance['anchor_dataset']}): "
        f"{acceptance['join_reduction']}x (min {acceptance['join_reduction_min']}x), "
        f"wall ratio {acceptance['wall_ratio']} (max {acceptance['wall_ratio_max']})"
    )
    print(
        f"incremental refresh speedup: {acceptance['incremental_speedup']}x "
        f"(min {acceptance['incremental_speedup_min']}x)"
    )
    print(f"acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
