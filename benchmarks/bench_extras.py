"""Extra-system benchmarks (slide 168's 'other kinds of KWS systems').

* X1 — spatial mCK: grid pruning vs exhaustive enumeration, same
  optimum, far fewer combinations;
* X2 — database selection: relationship-aware summaries rank the
  connectable database first where frequency-only summaries tie;
* X3 — INEX campaign leaderboard over generated topics.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.spatial.mck import MckStats, mck_exhaustive, mck_grid
from repro.spatial.objects import generate_spatial_db


def test_mck_grid_vs_exhaustive(benchmark):
    db = generate_spatial_db(n_objects=60, seed=43)
    keywords = ["cafe", "museum", "park"]
    exact = mck_exhaustive(db, keywords)
    stats = MckStats()
    fast = mck_grid(db, keywords, stats=stats)
    benchmark(mck_grid, db, keywords)
    assert exact is not None and fast is not None
    full = 1
    for k in keywords:
        full *= len(db.matching(k))
    print_table(
        "X1: mCK grid pruning vs exhaustive",
        ["algorithm", "combinations", "diameter"],
        [
            ("exhaustive", full, f"{exact[1]:.3f}"),
            ("grid-pruned", stats.combinations_checked, f"{fast[1]:.3f}"),
        ],
    )
    assert fast[1] == pytest.approx(exact[1])
    assert stats.combinations_checked < full


def test_database_selection_relationship_awareness(benchmark):
    from repro.datasets.bibliographic import bibliographic_schema
    from repro.distributed.selection import DatabaseSummary, rank_databases
    from repro.relational.database import Database

    def mini(rows):
        db = Database(bibliographic_schema(with_cite=False))
        db.insert("conference", cid=0, name="venue", year=2000, location=None)
        for i, (author, title) in enumerate(rows):
            db.insert("author", aid=i, name=author)
            db.insert("paper", pid=i, title=title, abstract=None, cid=0)
            db.insert("write", wid=i, aid=i, pid=i)
        return db

    joined = mini([("widom", "xml search"), ("smith", "graphs")])
    split = mini([("widom", "btrees"), ("smith", "xml search")])
    summaries = [
        DatabaseSummary.build("joined", joined),
        DatabaseSummary.build("split", split),
    ]
    ranked = benchmark(rank_databases, summaries, ["widom", "xml"])
    rows = [
        (s.name, f"{s.coverage(['widom', 'xml']):.2f}",
         f"{s.relationship_factor(['widom', 'xml']):.2f}", f"{score:.3f}")
        for s, score in ranked
    ]
    print_table("X2: database selection for Q={widom, xml}",
                ["database", "coverage", "relationship", "score"], rows)
    assert ranked[0][0].name == "joined"
    # Both databases have identical keyword coverage — only the
    # relationship summary separates them.
    assert summaries[0].coverage(["widom", "xml"]) == summaries[1].coverage(
        ["widom", "xml"]
    )


def test_campaign_leaderboard(benchmark, bib_xml, bib_xml_index):
    from repro.eval.campaign import Topic, leaderboard_rows, run_campaign
    from repro.xml_search.slca import lca_candidates, slca_indexed_lookup_eager
    from repro.xml_search.xrank import rank_results
    from repro.xmltree.index import XmlKeywordIndex

    def slca_engine(doc, keywords):
        index = XmlKeywordIndex(doc)
        lists = index.match_lists(keywords)
        if any(not l for l in lists):
            return []
        results = slca_indexed_lookup_eager(lists)
        return [r for r, _ in rank_results(index, results, keywords)]

    def all_lca_engine(doc, keywords):
        index = XmlKeywordIndex(doc)
        lists = index.match_lists(keywords)
        if any(not l for l in lists):
            return []
        return lca_candidates(lists)

    topics = []
    for i, keywords in enumerate((["xml", "search"], ["paper", "john"],
                                  ["keyword", "query"])):
        lists = bib_xml_index.match_lists(keywords)
        if any(not l for l in lists):
            continue
        relevance = {}
        for dewey in lca_candidates(lists):
            node = bib_xml.node_at(dewey)
            relevance[dewey] = (
                1.0 if node is not None and node.tag == "paper" else 0.0
            )
        topics.append(Topic(f"T{i}", tuple(keywords), relevance))
    assert topics
    engines = {"slca+xrank": slca_engine, "all-lca-docorder": all_lca_engine}
    reports = benchmark(run_campaign, engines, bib_xml, topics)
    rows = leaderboard_rows(reports)
    print_table("X3: campaign leaderboard (mean AgP, gP@1, gP@5)",
                ["engine", "AgP", "gP@1", "gP@5"], rows)
    assert reports[0].engine == "slca+xrank"

def test_method_family_comparison(benchmark):
    """X4 — the three search families side by side (slides 24-31): all
    answer the same planted intents; they differ in answer-list size
    (distinct-root inflation) and in result granularity."""
    import random

    from repro.core.engine import KeywordSearchEngine
    from repro.datasets.bibliographic import generate_bibliographic_db
    from repro.index.text import tokenize

    db = generate_bibliographic_db(
        n_authors=40, n_papers=80, n_conferences=6, seed=7
    )
    engine = KeywordSearchEngine(db)
    rng = random.Random(31)
    writes = list(db.rows("write"))
    intents = []
    while len(intents) < 10:
        write = rng.choice(writes)
        author = db.table("author").by_key(write["aid"])
        paper = db.table("paper").by_key(write["pid"])
        intents.append(
            (
                rng.choice(tokenize(author["name"])),
                rng.choice(tokenize(paper["title"])),
            )
        )
    methods = ["schema", "banks", "distinct_root", "ease"]
    hits = {m: 0 for m in methods}
    sizes = {m: 0 for m in methods}
    for a_term, p_term in intents:
        text = f"{a_term} {p_term}"
        for method in methods:
            results = engine.search(text, k=20, method=method)
            sizes[method] += len(results)
            for result in results[:3]:
                texts = " ".join(
                    row.text() for row in result.joined.distinct_rows()
                )
                tokens = set(tokenize(texts))
                if a_term in tokens and p_term in tokens:
                    hits[method] += 1
                    break
    benchmark(engine.search, f"{intents[0][0]} {intents[0][1]}", 5, "schema")
    rows = [
        (m, f"{hits[m] / len(intents):.2f}", sizes[m] / len(intents))
        for m in methods
    ]
    print_table(
        f"X4: search families over {len(intents)} intents",
        ["method", "top-3 hit rate", "mean #answers (k=20)"],
        rows,
    )
    assert hits["schema"] / len(intents) >= 0.9
    assert hits["banks"] / len(intents) >= 0.9
    # Distinct-root inflates the answer list relative to schema search.
    assert sizes["distinct_root"] >= sizes["schema"]
