"""E3 — SPARK under a non-monotonic score (slide 117).

Claim: skyline-sweep and block-pipeline return the same top-k as full
enumeration while verifying (far) fewer tuple combinations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.spark import (
    SparkStats,
    block_pipeline,
    naive_enumerate,
    skyline_sweep,
)
from repro.schema_search.tuple_sets import TupleSets

QUERY = ["database", "john"]
K = 5


@pytest.fixture(scope="module")
def setup(biblio_db, biblio_index, biblio_schema_graph):
    ts = TupleSets(biblio_db, biblio_index, QUERY)
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=3)
    assert cns
    return cns, ts, biblio_index


def test_naive(benchmark, setup):
    cns, ts, index = setup
    results = benchmark(naive_enumerate, cns, ts, index, QUERY, K)
    assert results


def test_skyline_sweep(benchmark, setup):
    cns, ts, index = setup
    results = benchmark(skyline_sweep, cns, ts, index, QUERY, K)
    assert results


def test_block_pipeline(benchmark, setup):
    cns, ts, index = setup
    results = benchmark(block_pipeline, cns, ts, index, QUERY, K)
    assert results


def test_shape(benchmark, setup):
    cns, ts, index = setup
    stats = {
        "naive": SparkStats(),
        "skyline-sweep": SparkStats(),
        "block-pipeline": SparkStats(),
    }
    naive = naive_enumerate(cns, ts, index, QUERY, k=K, stats=stats["naive"])
    sweep = skyline_sweep(cns, ts, index, QUERY, k=K, stats=stats["skyline-sweep"])
    blocks = block_pipeline(
        cns, ts, index, QUERY, k=K, block_size=4, stats=stats["block-pipeline"]
    )
    benchmark(skyline_sweep, cns, ts, index, QUERY, K)
    rows = [
        (name, s.combinations_verified, s.join_probes, s.queue_pops)
        for name, s in stats.items()
    ]
    print_table(
        f"E3: SPARK top-{K} (Q={' '.join(QUERY)})",
        ["algorithm", "combos_verified", "join_probes", "queue_pops"],
        rows,
    )
    reference = [round(s, 9) for s, _ in naive]
    assert [round(s, 9) for s, _ in sweep] == reference
    assert [round(s, 9) for s, _ in blocks] == reference
    assert (
        stats["skyline-sweep"].combinations_verified
        <= stats["naive"].combinations_verified
    )
    assert (
        stats["block-pipeline"].combinations_verified
        <= stats["naive"].combinations_verified
    )
