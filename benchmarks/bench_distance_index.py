"""E9 — distance indexes for graph search (slides 121-124).

Claims: BLINKS-style TA search over precomputed node-to-keyword lists
touches far fewer entries than unindexed BANKS expansion touches nodes;
the hub index answers exact distance queries with sub-quadratic space.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.graph_search.banks import banks_backward
from repro.graph_search.blinks import blinks_topk
from repro.index.distance import KeywordDistanceIndex
from repro.index.hub import HubIndex

QUERY = ["database", "john"]
K = 5


@pytest.fixture(scope="module")
def kdi(biblio_graph, biblio_index):
    return KeywordDistanceIndex(biblio_graph, biblio_index, max_distance=8)


def test_blinks(benchmark, kdi):
    result = benchmark(blinks_topk, kdi, QUERY, K)
    assert result.answers


def test_banks_baseline(benchmark, biblio_graph, biblio_index):
    groups = [biblio_index.matching_tuples(k) for k in QUERY]
    result = benchmark(banks_backward, biblio_graph, groups, K)
    assert result.trees


def test_indexed_vs_unindexed(benchmark, kdi, biblio_graph, biblio_index):
    groups = [biblio_index.matching_tuples(k) for k in QUERY]
    banks = banks_backward(biblio_graph, groups, k=K)
    blinks = blinks_topk(kdi, QUERY, k=K)
    benchmark(blinks_topk, kdi, QUERY, K)
    total_entries = sum(len(kdi.sorted_list(k)) for k in QUERY)
    print_table(
        f"E9a: top-{K} distinct-root search (Q={' '.join(QUERY)})",
        ["method", "graph_expansions", "index_entries", "answers"],
        [
            ("BANKS (no index)", banks.nodes_expanded, 0, len(banks.trees)),
            ("BLINKS (distance index)", 0,
             f"{blinks.entries_touched}/{total_entries}", len(blinks.answers)),
        ],
    )
    assert blinks.answers
    # The index replaces online graph traversal entirely (precomputed
    # distances), and TA stops before draining the lists.
    assert blinks.entries_touched <= total_entries
    # Both find the same optimal top-k costs.
    banks_costs = []
    for tree in banks.trees:
        banks_costs.append(
            sum(
                min(kdi.distances(kw).get(n, float("inf")) for n in tree.nodes)
                for kw in QUERY
            )
        )
    assert [round(c, 6) for c, _ in blinks.answers] == sorted(
        round(kdi.candidate_roots(QUERY)[n], 6) for _, n in blinks.answers
    )


def test_hub_index_space(benchmark, biblio_graph):
    n = len(biblio_graph)
    hub = benchmark(HubIndex, biblio_graph, 4 * int(n ** 0.5))
    print_table(
        "E9b: hub index space vs all-pairs",
        ["structure", "entries"],
        [
            ("all-pairs table (n^2)", n * n),
            (f"hub index ({len(hub.hubs)} hubs)", hub.index_entries()),
        ],
    )
    assert hub.index_entries() < n * n
