"""Shared fixtures and row-printing helpers for the E1-E18 benchmarks.

Every benchmark prints the table rows / series of its experiment (run
pytest with ``-s`` to see them) and asserts the *shape* claim from
DESIGN.md — who wins, in which direction — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.datasets.bibliographic import generate_bibliographic_db
from repro.datasets.events import generate_events_db
from repro.datasets.movies import generate_movie_db
from repro.datasets.products import generate_product_db
from repro.datasets.xml_corpora import generate_auctions_xml, generate_bib_xml
from repro.graph.data_graph import build_data_graph
from repro.index.inverted import InvertedIndex
from repro.relational.schema_graph import SchemaGraph
from repro.xmltree.index import XmlKeywordIndex


def print_table(title, header, rows):
    """Print one experiment table in the paper-style row format."""
    print()
    print(f"== {title} ==")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def biblio_db():
    return generate_bibliographic_db(
        n_authors=80, n_papers=220, n_conferences=10, seed=7
    )


@pytest.fixture(scope="session")
def biblio_index(biblio_db):
    return InvertedIndex(biblio_db)


@pytest.fixture(scope="session")
def biblio_schema_graph(biblio_db):
    return SchemaGraph(biblio_db.schema)


@pytest.fixture(scope="session")
def biblio_graph(biblio_db):
    return build_data_graph(biblio_db)


@pytest.fixture(scope="session")
def product_db():
    return generate_product_db(n_products=250, seed=13)


@pytest.fixture(scope="session")
def events_db():
    return generate_events_db(n_events=200, seed=17)


@pytest.fixture(scope="session")
def movie_db():
    return generate_movie_db(seed=11)


@pytest.fixture(scope="session")
def bib_xml():
    return generate_bib_xml(n_confs=12, papers_per_conf=14, seed=31)


@pytest.fixture(scope="session")
def bib_xml_index(bib_xml):
    return XmlKeywordIndex(bib_xml)


@pytest.fixture(scope="session")
def auctions_xml():
    return generate_auctions_xml(n_auctions=80, seed=37)
