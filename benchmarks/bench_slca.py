"""E5 — SLCA algorithms (slides 138-139).

Claims: Indexed-Lookup-Eager runtime is driven by the *smallest* list
(O(k·d·|Smin|·log|Smax|)); scan-eager walks every list so it degrades
with |Smax|; multiway-SLCA matches ILE; all return identical output.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.xml_search.slca import (
    slca_indexed_lookup_eager,
    slca_multiway,
    slca_scan_eager,
)

ALGOS = [
    ("scan-eager", slca_scan_eager),
    ("indexed-lookup-eager", slca_indexed_lookup_eager),
    ("multiway", slca_multiway),
]


def _skewed_query(index):
    """A (rare, frequent) keyword pair: |Smin| << |Smax|."""
    sizes = [(index.list_size(t), t) for t in index.vocabulary]
    sizes.sort()
    rare = next(t for s, t in sizes if s >= 1)
    frequent = sizes[-1][1]
    return [rare, frequent]


@pytest.mark.parametrize("name,algo", ALGOS)
def test_algorithm(benchmark, bib_xml_index, name, algo):
    keywords = _skewed_query(bib_xml_index)
    lists = bib_xml_index.match_lists(keywords)
    result = benchmark(algo, lists)
    assert result == slca_indexed_lookup_eager(lists)


def test_shape_skew(benchmark, bib_xml_index):
    keywords = _skewed_query(bib_xml_index)
    lists = bib_xml_index.match_lists(keywords)
    rows = []
    timings = {}
    for name, algo in ALGOS:
        start = time.perf_counter()
        for _ in range(50):
            out = algo(lists)
        timings[name] = (time.perf_counter() - start) / 50
        rows.append((name, f"{timings[name] * 1e6:.0f}us", len(out)))
    benchmark(slca_indexed_lookup_eager, lists)
    print_table(
        f"E5: SLCA on skewed lists |Smin|={len(lists[0])}, |Smax|={len(lists[1])}",
        ["algorithm", "mean_time", "#SLCAs"],
        rows,
    )
    assert {len(l) for l in lists}  # both lists non-empty
    # ILE anchored on the small list beats the full scan when lists are
    # heavily skewed.
    assert timings["indexed-lookup-eager"] <= timings["scan-eager"] * 2.0


def test_scaling_with_smin(benchmark, bib_xml_index):
    """ILE work grows with |Smin| at (roughly) fixed |Smax|."""
    frequent = max(bib_xml_index.vocabulary, key=bib_xml_index.list_size)
    by_size = sorted(
        ((bib_xml_index.list_size(t), t) for t in bib_xml_index.vocabulary
         if t != frequent)
    )
    picks = [by_size[0], by_size[len(by_size) // 2], by_size[-1]]
    rows = []
    prev = 0.0
    for size, token in picks:
        lists = bib_xml_index.match_lists([token, frequent])
        start = time.perf_counter()
        for _ in range(50):
            slca_indexed_lookup_eager(lists)
        elapsed = (time.perf_counter() - start) / 50
        rows.append((token, size, f"{elapsed * 1e6:.0f}us"))
    benchmark(
        slca_indexed_lookup_eager,
        bib_xml_index.match_lists([picks[-1][1], frequent]),
    )
    print_table("E5b: ILE cost vs |Smin|", ["anchor", "|Smin|", "mean_time"], rows)
    assert len(rows) == 3
