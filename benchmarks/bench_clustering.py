"""E14 — result clustering (slides 156-162).

Claims: XBridge root-path clustering recovers the planted result types
(conf vs journal papers) exactly; describable clustering splits an
ambiguous person query by keyword role (seller/buyer/auctioneer).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.clustering import rank_clusters, xbridge_clusters
from repro.xml_search.describable import describable_clusters
from repro.xml_search.slca import slca_indexed_lookup_eager
from repro.xmltree.index import XmlKeywordIndex


def test_xbridge_recovers_types(benchmark, bib_xml, bib_xml_index):
    results = [n.dewey for n in bib_xml.find_by_tag("paper")]
    clusters = benchmark(xbridge_clusters, bib_xml, results)
    ranked = rank_clusters(bib_xml_index, clusters, ["paper"])
    rows = [
        (path, len(clusters[path]), f"{score:.2f}") for path, score in ranked
    ]
    print_table("E14a: XBridge clusters for paper results",
                ["root path", "size", "score"], rows)
    assert set(clusters) == {"/bib/conf/paper", "/bib/journal/paper"}
    for path, members in clusters.items():
        for member in members:
            assert bib_xml.node_at(member).label_path() == path


def test_describable_roles(benchmark, auctions_xml):
    index = XmlKeywordIndex(auctions_xml)
    person = max(
        (t for t in index.vocabulary if t.isalpha() and len(t) > 2),
        key=index.list_size,
    )
    lists = index.match_lists([person])
    roots = slca_indexed_lookup_eager(lists)
    result_nodes = []
    for dewey in roots:
        node = auctions_xml.node_at(dewey)
        # climb to the auction element for role context
        while node.parent is not None and node.parent.parent is not None:
            node = node.parent
        result_nodes.append(node)
    clusters = benchmark(describable_clusters, result_nodes, [person])
    rows = [(desc, len(members)) for desc, members in sorted(clusters.items())]
    print_table(f"E14b: describable clusters for Q={{{person}}}",
                ["cluster semantics", "size"], rows)
    # The person plays multiple roles in the generated corpus.
    assert len(clusters) >= 2
    total = sum(len(m) for m in clusters.values())
    assert total == len(result_nodes)
