"""E17 — query forms (slides 54-63).

Claims: queriability-ranked form design covers a higher fraction of a
synthetic query workload than random form selection at an equal form
budget; keyword->form matching places the intended skeleton in the
top-3.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.forms.generation import generate_forms, generate_skeletons
from repro.forms.matching import FormIndex, rank_forms
from repro.forms.queriability import design_forms
from repro.index.text import tokenize


def _workload(db, rng, n_queries=60):
    """Synthetic intents: (keywords, tables the user means)."""
    intents = []
    author_rows = list(db.rows("author"))
    paper_rows = list(db.rows("paper"))
    conf_rows = list(db.rows("conference"))
    for _ in range(n_queries):
        kind = rng.random()
        if kind < 0.5:
            # author-paper intent (the dominant workload)
            author = rng.choice(author_rows)
            paper = rng.choice(paper_rows)
            keywords = [
                rng.choice(tokenize(author["name"])),
                rng.choice(tokenize(paper["title"])),
            ]
            intents.append((keywords, {"author", "paper"}))
        elif kind < 0.8:
            paper = rng.choice(paper_rows)
            conf = rng.choice(conf_rows)
            keywords = [
                rng.choice(tokenize(paper["title"])),
                conf["name"],
            ]
            intents.append((keywords, {"paper", "conference"}))
        else:
            author = rng.choice(author_rows)
            intents.append(([rng.choice(tokenize(author["name"]))], {"author"}))
    return intents


def _coverage(forms, intents):
    covered = 0
    for _, tables in intents:
        if any(tables <= set(f.skeleton.tables) for f in forms):
            covered += 1
    return covered / len(intents)


def test_queriability_coverage(benchmark, biblio_db, biblio_schema_graph):
    rng = random.Random(19)
    intents = _workload(biblio_db, rng)
    budget = 5
    designed = design_forms(
        biblio_db, biblio_schema_graph, form_budget=budget
    )
    all_skeletons = generate_skeletons(biblio_schema_graph, max_size=3)
    all_forms = generate_forms(biblio_db.schema, all_skeletons)
    random_runs = []
    for seed in range(5):
        rng2 = random.Random(seed)
        sample = rng2.sample(all_forms, min(budget, len(all_forms)))
        random_runs.append(_coverage(sample, intents))
    random_cov = sum(random_runs) / len(random_runs)
    designed_cov = _coverage(designed, intents)
    benchmark(design_forms, biblio_db, biblio_schema_graph, budget)
    print_table(
        f"E17a: workload coverage at form budget {budget}",
        ["design", "coverage"],
        [
            ("queriability-ranked", f"{designed_cov:.2f}"),
            ("random (mean of 5)", f"{random_cov:.2f}"),
        ],
    )
    assert designed_cov >= random_cov


def test_form_matching_top3(benchmark, biblio_db, biblio_index, biblio_schema_graph):
    rng = random.Random(23)
    intents = _workload(biblio_db, rng, n_queries=25)
    skeletons = generate_skeletons(biblio_schema_graph, max_size=3)
    forms = generate_forms(biblio_db.schema, skeletons)
    form_index = FormIndex(forms, biblio_index)
    hits = 0
    total = 0
    for keywords, tables in intents:
        ranked = rank_forms(form_index, keywords, k=3)
        total += 1
        if any(tables <= set(f.skeleton.tables) for f, _ in ranked):
            hits += 1
    benchmark(rank_forms, form_index, intents[0][0], 3)
    print_table(
        "E17b: intended skeleton in top-3 ranked forms",
        ["metric", "value"],
        [("hit rate", f"{hits / total:.2f}"), ("queries", total)],
    )
    assert hits / total >= 0.5
