"""E4 — Steiner tree algorithms (slides 30, 113-114).

Claims: the exact GST DP is tractable for fixed l but its cost grows
exponentially with l; BANKS I/II and STAR approximate with bounded
quality loss (weight ratio to optimum); BANKS II expands fewer nodes
than BANKS I on hub-heavy graphs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.graph_search.banks import banks_backward, banks_bidirectional
from repro.graph_search.mip import steiner_milp
from repro.graph_search.star import star_approximation
from repro.graph_search.steiner import group_steiner_dp


def _groups(index, keywords):
    return [index.matching_tuples(k) for k in keywords]


def test_exact_dp_cost_grows_with_groups(benchmark, biblio_graph, biblio_index):
    queries = {
        2: ["database", "john"],
        3: ["database", "john", "query"],
        4: ["database", "john", "query", "search"],
    }
    rows = []
    for l, keywords in queries.items():
        groups = _groups(biblio_index, keywords)
        start = time.perf_counter()
        tree = group_steiner_dp(biblio_graph, groups)
        elapsed = time.perf_counter() - start
        rows.append((l, f"{elapsed * 1000:.1f}ms",
                     f"{tree.weight:.1f}" if tree else "-"))
    benchmark(group_steiner_dp, biblio_graph, _groups(biblio_index, queries[2]))
    print_table("E4a: exact GST DP cost vs #keyword groups",
                ["l", "time", "opt_weight"], rows)
    assert len(rows) == 3


def test_approximations_vs_optimum(benchmark, biblio_graph, biblio_index):
    keywords = ["database", "john"]
    groups = _groups(biblio_index, keywords)
    optimum = group_steiner_dp(biblio_graph, groups)
    assert optimum is not None
    banks1 = banks_backward(biblio_graph, groups, k=1)
    banks2 = banks_bidirectional(biblio_graph, groups, k=1)
    star = star_approximation(biblio_graph, groups)
    benchmark(banks_backward, biblio_graph, groups, 1)
    rows = [
        ("exact-dp", f"{optimum.weight:.2f}", "1.00", "-"),
        (
            "banks-I",
            f"{banks1.trees[0].weight:.2f}",
            f"{banks1.trees[0].weight / optimum.weight:.2f}",
            banks1.nodes_expanded,
        ),
        (
            "banks-II",
            f"{banks2.trees[0].weight:.2f}",
            f"{banks2.trees[0].weight / optimum.weight:.2f}",
            banks2.nodes_expanded,
        ),
        (
            "star",
            f"{star.weight:.2f}",
            f"{star.weight / optimum.weight:.2f}",
            "-",
        ),
    ]
    print_table("E4b: tree weight vs optimum (Q=database john)",
                ["algorithm", "weight", "ratio", "nodes_expanded"], rows)
    assert banks1.trees[0].weight >= optimum.weight - 1e-9
    assert star.weight >= optimum.weight - 1e-9
    # Approximation quality stays within the empirical bound the papers
    # report (STAR: small constant factors in practice).
    assert star.weight <= 4 * optimum.weight
    assert banks1.trees[0].weight <= 4 * optimum.weight


def test_banks2_expands_fewer_nodes(benchmark, biblio_graph, biblio_index):
    keywords = ["database", "john"]
    groups = _groups(biblio_index, keywords)
    banks1 = banks_backward(biblio_graph, groups, k=3)
    banks2 = banks_bidirectional(biblio_graph, groups, k=3)
    benchmark(banks_bidirectional, biblio_graph, groups, 3)
    print_table(
        "E4c: expansion effort",
        ["algorithm", "nodes_expanded", "answers"],
        [
            ("banks-I", banks1.nodes_expanded, len(banks1.trees)),
            ("banks-II", banks2.nodes_expanded, len(banks2.trees)),
        ],
    )
    assert banks2.trees
    assert banks2.nodes_expanded <= banks1.nodes_expanded


def test_milp_matches_dp_on_subgraph(benchmark, biblio_graph, biblio_index):
    """The MILP formulation (Talukdar+, slide 113) reaches the DP
    optimum; solved on a query-neighbourhood subgraph since MILP size
    grows with arcs."""
    keywords = ["database", "john"]
    groups = _groups(biblio_index, keywords)
    # restrict to the 2-hop neighbourhood of the matches
    from repro.index.distance import bounded_bfs_distances

    region = set()
    for group in groups:
        region |= set(bounded_bfs_distances(biblio_graph, group, 1.0))
    sub = biblio_graph.subgraph(region)
    sub_groups = [[n for n in g if n in sub] for g in groups]
    dp = group_steiner_dp(sub, sub_groups)
    assert dp is not None
    # One MILP per candidate root is expensive: solve once per round.
    mip = benchmark.pedantic(
        steiner_milp, args=(sub, sub_groups), rounds=1, iterations=1
    )
    assert mip is not None
    print_table(
        f"E4d: MILP vs DP on {len(sub)}-node subgraph",
        ["solver", "weight"],
        [("exact DP", f"{dp.weight:.2f}"), ("MILP (scipy)", f"{mip.weight:.2f}")],
    )
    assert mip.weight == pytest.approx(dp.weight)
