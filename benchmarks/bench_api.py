"""API benchmark: sustained QPS, tail latency, and shedding at 2x load.

Boots the real :class:`~repro.serving.server.ServingServer` (asyncio
HTTP/1.1, admission control, generation swaps) on a loopback port and
measures three things:

1. **uncontended** — a closed loop with exactly ``max_concurrency``
   clients: sustained QPS and p50/p99 of successful requests;
2. **2x overload** — twice that many closed-loop clients: the bounded
   queue + shedding ladder must keep the p99 of *admitted* requests
   within ``P99_DEGRADATION_MAX`` of the uncontended p99, shed the
   excess with 429 + ``Retry-After`` (never a 5xx, never an unbounded
   queue), and keep goodput near the uncontended level;
3. **swap under load** — an ``/admin/swap`` issued mid-overload must
   complete with zero failed or torn in-flight requests.

``run_bench.py --suite api`` records the numbers in ``BENCH_api.json``.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.serving.server import ServingServer

QUERIES = [
    "database query",
    "smith database",
    "xml index",
    "john database",
    "xml keyword",
    "chen mining",
    "ullman join",
    "widom xml",
]

MAX_CONCURRENCY = 4
QUEUE_DEPTH = 2
#: High target so the *bounded queue* is the deterministic shedding
#: mechanism here; the latency-EWMA ladder is covered by unit tests.
TARGET_LATENCY_MS = 10_000.0
#: Overload p99 (admitted requests) may be at most this multiple of the
#: uncontended p99 — the acceptance gate from the issue.
P99_DEGRADATION_MAX = 2.0


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class _LoadResult:
    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms: List[float] = []
        self.statuses: Dict[int, int] = {}
        self.missing_retry_after = 0

    def record(self, status: int, latency_ms: float, retry_after: Optional[str]):
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status == 200:
                self.latencies_ms.append(latency_ms)
            elif status == 429 and not retry_after:
                self.missing_retry_after += 1

    def count(self, *statuses: int) -> int:
        with self.lock:
            return sum(self.statuses.get(s, 0) for s in statuses)

    def count_5xx(self) -> int:
        with self.lock:
            return sum(n for s, n in self.statuses.items() if s >= 500)


def _hit(base: str, path: str, result: _LoadResult) -> int:
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            resp.read()
            status, retry_after = resp.status, None
    except urllib.error.HTTPError as exc:
        exc.read()
        status, retry_after = exc.code, exc.headers.get("Retry-After")
    except OSError:
        status, retry_after = 599, None
    result.record(status, (time.perf_counter() - start) * 1000.0, retry_after)
    return status


def _closed_loop(
    base: str, clients: int, duration_s: float, tenant: str
) -> _LoadResult:
    """*clients* threads re-issuing queries back-to-back for *duration_s*."""
    result = _LoadResult()
    stop = time.perf_counter() + duration_s

    def worker(offset: int) -> None:
        i = offset
        while time.perf_counter() < stop:
            query = QUERIES[i % len(QUERIES)].replace(" ", "+")
            status = _hit(base, f"/search?q={query}&tenant={tenant}", result)
            if status == 429:
                time.sleep(0.02)  # polite client: brief backoff on shed
            i += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return result


def _phase_report(result: _LoadResult, duration_s: float) -> Dict[str, object]:
    ok = result.count(200)
    return {
        "requests": sum(result.statuses.values()),
        "ok": ok,
        "shed_429": result.count(429),
        "errors_5xx": result.count_5xx(),
        "qps": round(ok / duration_s, 1),
        "p50_ms": round(_percentile(result.latencies_ms, 0.50), 2),
        "p99_ms": round(_percentile(result.latencies_ms, 0.99), 2),
    }


def run_api_benchmark(smoke: bool = False) -> Dict[str, object]:
    duration_s = 2.0 if smoke else 6.0
    db = generate_bibliographic_db(seed=7)
    server = ServingServer(
        KeywordSearchEngine(db),
        port=0,
        max_concurrency=MAX_CONCURRENCY,
        max_queue_depth=QUEUE_DEPTH,
        tenant_rate=100_000.0,
        tenant_burst=100_000.0,
        target_latency_ms=TARGET_LATENCY_MS,
        engine_builder=lambda: KeywordSearchEngine(db),
    )
    server.start_in_thread()
    try:
        # Warm the hot substrates so phase 1 measures steady state.
        for query in QUERIES:
            _hit(server.address, f"/search?q={query.replace(' ', '+')}",
                 _LoadResult())

        # Comfortably under capacity: pressure stays in the full-mode band.
        uncontended = _closed_loop(
            server.address, 2, duration_s, tenant="uncontended"
        )

        # 2x offered load, with a swap fired mid-overload.
        swap_outcome: Dict[str, object] = {}

        def mid_swap() -> None:
            time.sleep(duration_s / 2.0)
            body = json.dumps({"source": "rebuild"}).encode()
            req = urllib.request.Request(
                server.address + "/admin/swap", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=60) as resp:
                    swap_outcome.update(json.loads(resp.read()))
                    swap_outcome["status"] = resp.status
            except urllib.error.HTTPError as exc:
                swap_outcome["status"] = exc.code
                swap_outcome["error"] = exc.read().decode()

        swapper = threading.Thread(target=mid_swap)
        swapper.start()
        overload = _closed_loop(
            server.address,
            2 * (MAX_CONCURRENCY + QUEUE_DEPTH),  # 2x system capacity
            duration_s,
            tenant="overload",
        )
        swapper.join(90.0)

        uncontended_report = _phase_report(uncontended, duration_s)
        overload_report = _phase_report(overload, duration_s)
        p99_ratio = (
            overload_report["p99_ms"] / uncontended_report["p99_ms"]
            if uncontended_report["p99_ms"]
            else 0.0
        )
        shed_rate = (
            overload_report["shed_429"] / overload_report["requests"]
            if overload_report["requests"]
            else 0.0
        )
        report = {
            "suite": "api",
            "smoke": smoke,
            "config": {
                "max_concurrency": MAX_CONCURRENCY,
                "max_queue_depth": QUEUE_DEPTH,
                "duration_s": duration_s,
            },
            "uncontended": uncontended_report,
            "overload_2x": {
                **overload_report,
                "shed_rate": round(shed_rate, 3),
                "missing_retry_after": overload.missing_retry_after,
            },
            "swap_under_load": {
                "status": swap_outcome.get("status"),
                "generation": swap_outcome.get("generation"),
                "drained": swap_outcome.get("drained"),
                "drain_ms": swap_outcome.get("drain_ms"),
            },
        }
        report["acceptance"] = {
            "p99_ratio": round(p99_ratio, 2),
            "p99_ratio_max": P99_DEGRADATION_MAX,
            "no_5xx": overload.count_5xx() == 0
            and uncontended.count_5xx() == 0,
            "sheds_carry_retry_after": overload.missing_retry_after == 0,
            "overload_sheds_excess": overload_report["shed_429"] > 0,
            "swap_completed_under_load": swap_outcome.get("status") == 200
            and bool(swap_outcome.get("drained")),
            "pass": (
                0.0 < p99_ratio <= P99_DEGRADATION_MAX
                and overload.count_5xx() == 0
                and uncontended.count_5xx() == 0
                and overload.missing_retry_after == 0
                and overload_report["shed_429"] > 0
                and swap_outcome.get("status") == 200
                and bool(swap_outcome.get("drained"))
            ),
        }
        return report
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Pytest hooks (shape assertions, smoke-sized)
# ----------------------------------------------------------------------
def test_api_benchmark_smoke():
    report = run_api_benchmark(smoke=True)
    acceptance = report["acceptance"]
    assert acceptance["no_5xx"]
    assert acceptance["sheds_carry_retry_after"]
    assert acceptance["swap_completed_under_load"]
    assert report["overload_2x"]["shed_429"] > 0


if __name__ == "__main__":
    print(json.dumps(run_api_benchmark(smoke=True), indent=2))
