"""E13 — Keyword++ query rewriting (slides 95-100).

Claim: DQP-learned predicate mappings lift recall (and F1) over literal
LIKE matching for non-quantitative keywords ("ibm" -> brand=lenovo,
"small" -> ORDER BY screen_size ASC).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.ambiguity.rewriting import KeywordPlusPlus

LOG = [
    ["ibm", "laptop"],
    ["laptop"],
    ["ibm", "business"],
    ["business"],
    ["small", "laptop"],
    ["small", "tablet"],
    ["tablet"],
    ["light", "laptop"],
    ["mac", "laptop"],
]


@pytest.fixture(scope="module")
def kpp(product_db):
    kpp = KeywordPlusPlus(
        product_db,
        "product",
        categorical_attributes=["brand", "category"],
        numerical_attributes=["screen_size", "weight", "price"],
    )
    kpp.learn(LOG)
    return kpp


def _prf(retrieved, truth):
    retrieved = {r.rowid for r in retrieved}
    truth = {r.rowid for r in truth}
    if not retrieved:
        return (0.0, 0.0, 0.0)
    tp = len(retrieved & truth)
    precision = tp / len(retrieved)
    recall = tp / len(truth) if truth else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return (precision, recall, f1)


def test_learning(benchmark, product_db):
    def learn():
        kpp = KeywordPlusPlus(
            product_db,
            "product",
            categorical_attributes=["brand", "category"],
            numerical_attributes=["screen_size", "weight", "price"],
        )
        kpp.learn(LOG)
        return kpp

    kpp = benchmark(learn)
    assert "ibm" in kpp.mappings


def test_shape(benchmark, kpp, product_db):
    query = ["ibm", "laptop"]
    truth = [
        r
        for r in product_db.rows("product")
        if r["brand"] == "lenovo" and r["category"] == "laptop"
    ]
    literal = kpp.literal_match(query)
    structured = kpp.structured_match(query)
    benchmark(kpp.structured_match, query)
    lp, lr, lf = _prf(literal, truth)
    sp, sr, sf = _prf(structured, truth)
    print_table(
        "E13: 'ibm laptop' vs ground truth (brand=lenovo & category=laptop)",
        ["method", "precision", "recall", "F1", "mappings"],
        [
            ("literal LIKE", f"{lp:.2f}", f"{lr:.2f}", f"{lf:.2f}", "-"),
            (
                "keyword++ structured",
                f"{sp:.2f}",
                f"{sr:.2f}",
                f"{sf:.2f}",
                "; ".join(m.describe() for m in kpp.translate(query)[0]),
            ),
        ],
    )
    assert sr > lr  # the recall lift is the slide-95 headline
    assert sf >= lf
    assert sr == 1.0


def test_ordering_mapping(benchmark, kpp, product_db):
    rows = benchmark(kpp.structured_match, ["small", "laptop"])
    assert rows
    sizes = [r["screen_size"] for r in rows if r["screen_size"] is not None]
    assert sizes == sorted(sizes)  # ORDER BY screen_size ASC applied
