"""E1 — candidate network explosion (slide 115).

Claim: CN count grows explosively with the maximum CN size and with the
number of keywords ("SG Author, Write, Paper, Cite => ~0.2M CNs"); the
duplicate-free generator enumerates each network once.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.tuple_sets import TupleSets


def _cns(db, index, graph, keywords, max_size):
    ts = TupleSets(db, index, keywords)
    return generate_candidate_networks(graph, ts, max_size=max_size)


def test_cn_count_grows_with_max_size(
    benchmark, biblio_db, biblio_index, biblio_schema_graph
):
    keywords = ["database", "john"]
    counts = {}
    for max_size in (2, 3, 4, 5):
        counts[max_size] = len(
            _cns(biblio_db, biblio_index, biblio_schema_graph, keywords, max_size)
        )
    benchmark(
        _cns, biblio_db, biblio_index, biblio_schema_graph, keywords, 5
    )
    rows = [(m, counts[m]) for m in sorted(counts)]
    print_table("E1a: CN count vs max CN size (Q=database john)",
                ["max_size", "#CNs"], rows)
    values = [counts[m] for m in sorted(counts)]
    assert values == sorted(values)
    assert values[-1] > 4 * values[0] if values[0] else values[-1] > 0


def test_cn_space_grows_with_keywords(
    benchmark, biblio_db, biblio_index, biblio_schema_graph
):
    """More keywords mean more tuple-set node types (the slide-115
    search-space explosion); the number of *valid* CNs at a fixed size
    is not monotone — coverage constraints can prune shapes — so the
    assertion targets the node-type space and the large-size count."""
    queries = {
        1: ["database"],
        2: ["database", "john"],
        3: ["database", "john", "query"],
    }
    node_types = {}
    counts = {}
    for n, q in queries.items():
        ts = TupleSets(biblio_db, biblio_index, q)
        node_types[n] = len(ts.non_free_keys())
        counts[n] = len(_cns(biblio_db, biblio_index, biblio_schema_graph, q, 5))
    benchmark(
        _cns, biblio_db, biblio_index, biblio_schema_graph, queries[3], 5
    )
    rows = [
        (n, " ".join(queries[n]), node_types[n], counts[n]) for n in sorted(counts)
    ]
    print_table("E1b: search space vs #keywords (max_size=5)",
                ["l", "query", "#tuple-sets", "#CNs"], rows)
    assert node_types[3] >= node_types[2] >= node_types[1]
    assert counts[3] > counts[1]


def test_duplicate_free(benchmark, biblio_db, biblio_index, biblio_schema_graph):
    cns = benchmark(
        _cns, biblio_db, biblio_index, biblio_schema_graph,
        ["database", "john"], 5,
    )
    codes = [cn.canonical_code() for cn in cns]
    assert len(codes) == len(set(codes))
