"""E24 — structured query front end: overhead, pushdown, parity.

Claims (ISSUE 10: unified structured query front end — fielded DSL,
expansion, facets, highlighting — plus the cache-key sweep):

1. **Parse+compile overhead.**  Bare keyword queries now pass through
   the DSL parser and canonicaliser before hitting the legacy
   execution path.  The acceptance gate caps the *added* per-query
   parse cost (DSL parse minus the legacy tokenize-only parse) at 5%
   of the bare query's uncached execution time.
2. **Predicate pushdown.**  A fielded query (``year:<lo>..<hi> kw``)
   filters tuple sets *before* CN enumeration, so it should not lose
   to the post-hoc alternative a caller would otherwise need for a
   correct top-k: over-fetch the bare query and discard results with
   out-of-range rows.  The speedup ratio is reported; the gate
   requires the structured run to return exclusively in-range rows
   and at least one result.
3. **Parity.**  Bare queries remain byte-identical across the front
   end: every method's top-k via ``search(text)`` (canonical parse
   path) must equal the legacy ``Query``-object path, cached must
   equal uncached under the new structured cache key, and sharded
   execution must match single-engine ranking (scores + networks;
   exact-score ties at the k boundary may resolve to different tuples,
   a pre-existing GlobalTopK behaviour).  Zero divergences allowed.

Runnable under pytest or as a script emitting ``BENCH_query.json``:

    PYTHONPATH=src python benchmarks/bench_query.py [--smoke] \
        [--out BENCH_query.json]
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from typing import Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.core.query import Query
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.index.text import tokenize
from repro.query import parse_query
from repro.sharding import ShardedSearchEngine

#: Bare workload: crosses the cheap method families so the parity gate
#: and the overhead measurement see more than one execution path.
BARE_WORKLOAD: List[Tuple[str, str]] = [
    ("john xml", "schema"),
    ("widom xml", "schema"),
    ("database keyword", "schema"),
    ("xml keyword", "index_only"),
    ("john conference", "index_only"),
    ("john sigmod", "banks"),
]

METHODS = [
    "schema",
    "banks",
    "banks2",
    "steiner",
    "distinct_root",
    "ease",
    "index_only",
]


def _signature(results) -> bytes:
    payload = [
        [repr(r.score), r.network, [str(t) for t in r.tuple_ids()]]
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_parse_overhead(db, repeats: int) -> Dict[str, object]:
    """Per-query DSL parse cost relative to bare uncached execution.

    Bare queries pay the DSL lexer + CNF normaliser once per distinct
    text (the canonical parse is memoised afterwards), so the honest
    overhead figure is the fresh parse cost against what executing the
    same bare query actually costs.  The legacy tokenize-only parse is
    timed too so the *added* cost — DSL parse minus what the old front
    end already spent — is what the 5% gate judges.
    """
    engine = KeywordSearchEngine(db)
    n = len(BARE_WORKLOAD)

    def run_uncached():
        for query, method in BARE_WORKLOAD:
            engine.search(query, k=10, method=method, use_cache=False)

    exec_us = _median_seconds(run_uncached, repeats) / n * 1e6
    parse_us = (
        _median_seconds(
            lambda: [parse_query(q) for q, _ in BARE_WORKLOAD], repeats
        )
        / n
        * 1e6
    )
    legacy_us = (
        _median_seconds(
            lambda: [
                Query(raw=q, keywords=tuple(tokenize(q)))
                for q, _ in BARE_WORKLOAD
            ],
            repeats,
        )
        / n
        * 1e6
    )
    added_us = max(parse_us - legacy_us, 0.0)
    return {
        "uncached_exec_us_per_query": round(exec_us, 2),
        "dsl_parse_us_per_query": round(parse_us, 2),
        "legacy_parse_us_per_query": round(legacy_us, 2),
        "overhead_pct": round(added_us / exec_us * 100, 3) if exec_us else 0.0,
    }


def measure_pushdown(db, repeats: int) -> Dict[str, object]:
    """Fielded filter before CN enumeration vs post-hoc row discard.

    The post-hoc baseline is what a caller without predicate pushdown
    must do for a *correct* top-k: over-fetch (4x k here), discard
    results whose conference rows fall outside the range, keep k.
    Pushdown instead filters the conference tuple sets before CN
    enumeration, so the join never materialises out-of-range rows.
    """
    engine = KeywordSearchEngine(db)
    years = sorted({r.get("year") for r in db.table("conference").rows()})
    lo, hi = years[0], years[len(years) // 4]
    # Join-heavy workload: the location keyword matches several
    # conference rows, the title keyword many papers; CNs join the two.
    # Pick the modal location among in-range conferences so the
    # structured query is guaranteed non-empty.
    locations = [
        r.get("location")
        for r in db.table("conference").rows()
        if lo <= r.get("year") <= hi
    ]
    location = max(set(locations), key=locations.count)
    bare_text = f"{location} database"
    structured_text = f"year:{lo}..{hi} {bare_text}"
    k = 10

    def in_range(row) -> bool:
        return row.table.name != "conference" or lo <= row.get("year") <= hi

    def run_structured():
        return engine.search(
            structured_text, k=k, method="schema", use_cache=False
        )

    def run_posthoc():
        results = engine.search(
            bare_text, k=4 * k, method="schema", use_cache=False
        )
        kept = [
            r
            for r in results
            if all(in_range(row) for row in r.joined.distinct_rows())
        ]
        return kept[:k]

    structured_s = _median_seconds(run_structured, repeats)
    posthoc_s = _median_seconds(run_posthoc, repeats)

    structured_rows = [
        row
        for result in run_structured()
        for row in result.joined.distinct_rows()
    ]
    only_in_range = all(in_range(row) for row in structured_rows)
    return {
        "query": structured_text,
        "structured_s": round(structured_s, 6),
        "posthoc_s": round(posthoc_s, 6),
        "speedup_vs_posthoc": round(posthoc_s / structured_s, 2)
        if structured_s
        else None,
        "result_rows": len(structured_rows),
        "only_in_range_rows": only_in_range,
    }


def _rank_signature(results) -> bytes:
    """Score + network sequence only: stable under equal-score ties.

    Sharded gathers may break exact-score ties differently from the
    single engine at the k boundary (pre-existing GlobalTopK
    behaviour), so the cross-topology check compares ranking rather
    than exact tuple identity.
    """
    payload = [[repr(r.score), r.network] for r in results]
    return json.dumps(payload).encode("utf-8")


def measure_parity(db) -> Dict[str, object]:
    """Byte-level parity: canonical vs legacy path, sharded vs single."""
    single = KeywordSearchEngine(db)
    divergences = 0
    checks = 0
    for query_text, _ in BARE_WORKLOAD[:3]:
        for method in METHODS:
            via_front = _signature(
                single.search(query_text, k=10, method=method, use_cache=False)
            )
            # The pre-DSL front end tokenized *and cleaned* before
            # dispatch; reproduce exactly that on the legacy entry.
            legacy = single.parse(query_text)
            via_legacy = _signature(
                single._run_ladder(legacy, 10, method, None, False, None)
            )
            cached = _signature(single.search(query_text, k=10, method=method))
            checks += 2
            if via_front != via_legacy:
                divergences += 1
            if cached != via_front:
                divergences += 1
    with ShardedSearchEngine(db, n_shards=4) as sharded:
        for query_text, _ in BARE_WORKLOAD[:3]:
            for method in METHODS:
                checks += 1
                if _rank_signature(
                    sharded.search(query_text, k=10, method=method)
                ) != _rank_signature(
                    single.search(query_text, k=10, method=method)
                ):
                    divergences += 1
    return {"checks": checks, "divergences": divergences}


def run_query_benchmark(smoke: bool = False) -> Dict[str, object]:
    if smoke:
        db = generate_bibliographic_db(
            n_authors=30, n_conferences=5, n_papers=100, seed=7
        )
        repeats = 5
    else:
        db = generate_bibliographic_db(
            n_authors=150, n_conferences=12, n_papers=600, seed=7
        )
        repeats = 15

    overhead = measure_parse_overhead(db, repeats)
    pushdown = measure_pushdown(db, repeats)
    parity = measure_parity(db)

    acceptance = {
        "overhead_pct": overhead["overhead_pct"],
        "overhead_pct_max": 5.0,
        "pushdown_only_in_range": bool(
            pushdown["only_in_range_rows"] and pushdown["result_rows"] > 0
        ),
        "divergences": parity["divergences"],
    }
    acceptance["pass"] = bool(
        acceptance["overhead_pct"] <= acceptance["overhead_pct_max"]
        and acceptance["pushdown_only_in_range"]
        and parity["divergences"] == 0
    )

    return {
        "benchmark": "query",
        "smoke": smoke,
        "dataset": {"rows": db.size()},
        "workload": [list(pair) for pair in BARE_WORKLOAD],
        "parse_overhead": overhead,
        "predicate_pushdown": pushdown,
        "parity": parity,
        "acceptance": acceptance,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_query_benchmark_smoke():
    report = run_query_benchmark(smoke=True)
    assert report["parity"]["divergences"] == 0
    assert report["acceptance"]["pushdown_only_in_range"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", default="BENCH_query.json")
    args = parser.parse_args(argv)
    report = run_query_benchmark(smoke=args.smoke)
    from datetime import datetime, timezone

    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    print(
        f"parse+compile overhead {acceptance['overhead_pct']}% "
        f"(max {acceptance['overhead_pct_max']}%), pushdown speedup "
        f"{report['predicate_pushdown']['speedup_vs_posthoc']}x, "
        f"divergences {acceptance['divergences']}"
    )
    print(f"query acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
