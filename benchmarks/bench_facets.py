"""E11 — faceted navigation cost (slides 84-93).

Claim: the cost-greedy navigation tree yields lower expected navigation
cost than static attribute orders and much lower than reading the flat
result list.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.facets import (
    NavigationModel,
    build_navigation_tree,
    navigation_cost,
)
from repro.datasets.logs import generate_query_log

ATTRIBUTES = ["state", "month", "city"]


@pytest.fixture(scope="module")
def setup(events_db):
    rows = list(events_db.rows("events"))
    log = generate_query_log(
        events_db, "events", n_queries=150, attributes=["state", "month"], seed=23
    )
    return rows, NavigationModel(log)


def test_greedy_tree(benchmark, setup):
    rows, model = setup
    tree = benchmark(build_navigation_tree, rows, ATTRIBUTES, model)
    assert tree.children


def test_shape(benchmark, setup):
    rows, model = setup
    greedy = build_navigation_tree(rows, ATTRIBUTES, model)
    costs = {
        "flat list (no facets)": float(len(rows)),
        "greedy (cost model)": navigation_cost(greedy, model),
    }
    for order in (["city", "month", "state"], ["month", "city", "state"]):
        tree = build_navigation_tree(
            rows, ATTRIBUTES, model, attribute_order=order
        )
        costs[f"static order {'>'.join(order)}"] = navigation_cost(tree, model)
    benchmark(build_navigation_tree, rows, ATTRIBUTES, model)
    rows_out = [(name, f"{cost:.1f}") for name, cost in costs.items()]
    print_table("E11: expected navigation cost", ["strategy", "cost"], rows_out)
    greedy_cost = costs["greedy (cost model)"]
    for name, cost in costs.items():
        if name != "greedy (cost model)":
            assert greedy_cost <= cost + 1e-9, name
