"""E15 — INEX-style evaluation of ranking functions (slides 104-106).

Claim: on ground truth with known intent, AgP ranks structure-aware
scoring (XRank decay + ief) above flat TF·IDF, and both far above a
random permutation.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.analysis.ranking import VectorSpaceRanker
from repro.eval.inex import average_generalized_precision
from repro.xml_search.slca import slca_indexed_lookup_eager
from repro.xml_search.xrank import rank_results
from repro.xmltree.index import XmlKeywordIndex


def _workload(index, n_queries=12, seed=3):
    rng = random.Random(seed)
    vocab = [t for t in index.vocabulary if index.list_size(t) >= 2]
    queries = []
    while len(queries) < n_queries and vocab:
        keywords = rng.sample(vocab, 2)
        lists = index.match_lists(keywords)
        if all(lists) and slca_indexed_lookup_eager(lists):
            queries.append(keywords)
    return queries


def _relevance_oracle(tree, result, keywords):
    """Ground truth: the intent behind the generated corpus is paper
    retrieval — a result is relevant iff it is a paper element, partial
    credit for other covering nodes deep in the tree, none for coarse
    ancestors (bib/conf roots), mirroring INEX's preference for focused
    fragments."""
    node = tree.node_at(result)
    if node is None:
        return 0.0
    if node.tag == "paper":
        return 1.0
    if node.tag in ("bib",):
        return 0.0
    return 0.2 if node.depth >= 2 else 0.0


def test_agp_comparison(benchmark, bib_xml, bib_xml_index):
    queries = _workload(bib_xml_index)
    assert queries
    rng = random.Random(7)
    agps = {"xrank (structure-aware)": [], "tfidf (flat)": [], "random": []}
    for keywords in queries:
        lists = bib_xml_index.match_lists(keywords)
        # Rank the full LCA-candidate space (mixed quality: papers,
        # containers, document root) — the setting where ranking matters.
        from repro.xml_search.slca import lca_candidates

        results = lca_candidates(lists)
        if not results:
            continue
        relevance = {
            r: _relevance_oracle(bib_xml, r, keywords) for r in results
        }
        # xrank ordering
        ranked = [r for r, _ in rank_results(bib_xml_index, results, keywords)]
        agps["xrank (structure-aware)"].append(
            average_generalized_precision([relevance[r] for r in ranked])
        )
        # flat tf-idf over subtree text
        docs = {r: bib_xml.node_at(r).text() for r in results}
        ranker = VectorSpaceRanker(docs)
        flat = [r for r, _ in ranker.rank(keywords)]
        flat += [r for r in results if r not in flat]
        agps["tfidf (flat)"].append(
            average_generalized_precision([relevance[r] for r in flat])
        )
        shuffled = list(results)
        rng.shuffle(shuffled)
        agps["random"].append(
            average_generalized_precision([relevance[r] for r in shuffled])
        )
    benchmark(
        rank_results,
        bib_xml_index,
        slca_indexed_lookup_eager(bib_xml_index.match_lists(queries[0])),
        queries[0],
    )
    means = {
        name: sum(values) / len(values) for name, values in agps.items()
    }
    rows = [(name, f"{mean:.3f}") for name, mean in means.items()]
    print_table(
        f"E15: mean AgP over {len(queries)} queries", ["ranking", "AgP"], rows
    )
    assert means["xrank (structure-aware)"] > means["random"]
    assert means["xrank (structure-aware)"] >= means["tfidf (flat)"]
