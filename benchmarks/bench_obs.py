"""E21 — observability overhead: tracing must be (nearly) free.

Claims (ISSUE: tracing spans, metrics registry, profiling hooks):

1. Running the compute path (result LRU bypassed, substrate memos warm)
   with ``trace=True`` costs < 5% wall-clock over ``trace=False`` on the
   bibliographic workload, across relational methods and the XML engine.
2. Traced and untraced runs return *byte-identical* results — tracing
   never reorders or perturbs evaluation (divergence count must be 0).
3. Every traced computed query yields a span tree covering at least six
   named pipeline stages.

Warm-path (result-cache hit) latencies are reported as absolute
microseconds only: a hit is ~µs either way, so a relative bound there
would measure scheduler noise, not tracing.

Runnable under pytest or as a script emitting ``BENCH_obs.json``:

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke] \
        [--out BENCH_obs.json]
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.core.xml_engine import XmlSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.datasets.xml_corpora import generate_bib_xml

OVERHEAD_BOUND_PCT = 5.0
MIN_SPAN_STAGES = 6

# (query, method) pairs drawn from the generator's word pools; methods
# cover every traced dispatch family (schema CNs, graph search, Steiner,
# distinct-root, EASE, index-only).
RELATIONAL_WORKLOAD: List[Tuple[str, str]] = [
    ("database query", "schema"),
    ("xml keyword", "schema"),
    ("john database", "schema"),
    ("smith database", "banks"),
    ("xml index", "banks2"),
    ("keyword search", "steiner"),
    ("chen mining", "distinct_root"),
    ("chen mining", "ease"),
    ("query join", "index_only"),
    ("database index", "index_only"),
]

XML_WORKLOAD: List[Tuple[str, str]] = [
    ("keyword query", "slca"),
    ("xml search", "slca"),
    ("database author", "multiway"),
    ("keyword query", "elca"),
    ("xml author", "elca"),
]


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _signature(results) -> bytes:
    """Canonical byte serialisation of a relational ResultSet."""
    payload = [
        [round(r.score, 9), r.network, [str(t) for t in r.tuple_ids()]]
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _xml_signature(results) -> bytes:
    payload = [[round(r.score, 9), list(r.root)] for r in results]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _interleaved_best(
    untraced_pass: Callable[[], object],
    traced_pass: Callable[[], object],
    repeats: int,
) -> Tuple[float, float]:
    """Best-of-``repeats`` workload wall time per mode, ABAB-interleaved.

    Alternating the order each round cancels drift (thermal, allocator
    warm-up) that would otherwise bias whichever mode runs second.
    """
    untraced: List[float] = []
    traced: List[float] = []
    for i in range(repeats):
        if i % 2 == 0:
            untraced.append(_timed(untraced_pass))
            traced.append(_timed(traced_pass))
        else:
            traced.append(_timed(traced_pass))
            untraced.append(_timed(untraced_pass))
    return min(untraced), min(traced)


def measure_relational(
    repeats: int = 7, k: int = 5
) -> Dict[str, object]:
    """Compute-path overhead + parity + span coverage, relational engine.

    ``use_cache=False`` bypasses the result LRU so every query runs the
    full pipeline; substrate memos stay warm (served-path steady state),
    so the clock covers evaluation — the part tracing instruments.
    """
    engine = KeywordSearchEngine(generate_bibliographic_db(seed=7))

    divergence = 0
    span_coverage: Dict[str, List[str]] = {}
    for query, method in RELATIONAL_WORKLOAD:
        plain = engine.search(query, k=k, method=method, use_cache=False)
        traced = engine.search(
            query, k=k, method=method, use_cache=False, trace=True
        )
        if _signature(plain) != _signature(traced):
            divergence += 1
        names = sorted(traced.trace.span_names())
        span_coverage[f"{method}:{query}"] = names

    def run_pass(trace: bool) -> None:
        for query, method in RELATIONAL_WORKLOAD:
            engine.search(
                query, k=k, method=method, use_cache=False, trace=trace
            )

    best_plain, best_traced = _interleaved_best(
        lambda: run_pass(False), lambda: run_pass(True), repeats
    )
    overhead_pct = (
        (best_traced - best_plain) / best_plain * 100.0 if best_plain else 0.0
    )

    # Warm path: cache hits, absolute µs per lookup.
    for query, method in RELATIONAL_WORKLOAD[:3]:
        engine.search(query, k=k, method=method)  # fill the LRU
    hits = RELATIONAL_WORKLOAD[:3]
    n_hits = 50
    plain_hit_s = _timed(
        lambda: [
            engine.search(q, k=k, method=m) for _ in range(n_hits) for q, m in hits
        ]
    )
    traced_hit_s = _timed(
        lambda: [
            engine.search(q, k=k, method=m, trace=True)
            for _ in range(n_hits)
            for q, m in hits
        ]
    )
    per_lookup = len(hits) * n_hits

    min_stages = min(len(names) for names in span_coverage.values())
    return {
        "queries": len(RELATIONAL_WORKLOAD),
        "repeats": repeats,
        "untraced_wall_s": round(best_plain, 6),
        "traced_wall_s": round(best_traced, 6),
        "overhead_pct": round(overhead_pct, 3),
        "divergence": divergence,
        "min_span_stages": min_stages,
        "span_coverage": span_coverage,
        "warm_hit_untraced_us": round(1e6 * plain_hit_s / per_lookup, 2),
        "warm_hit_traced_us": round(1e6 * traced_hit_s / per_lookup, 2),
    }


def measure_xml(repeats: int = 7, k: int = 5) -> Dict[str, object]:
    """Same contract for the XML engine (no result LRU to bypass)."""
    engine = XmlSearchEngine(generate_bib_xml(seed=31))
    engine.index  # build outside the clock

    divergence = 0
    span_coverage: Dict[str, List[str]] = {}
    for query, semantics in XML_WORKLOAD:
        plain = engine.search(query, k=k, semantics=semantics)
        traced = engine.search(query, k=k, semantics=semantics, trace=True)
        if _xml_signature(plain) != _xml_signature(traced):
            divergence += 1
        names = sorted(traced.trace.span_names())
        span_coverage[f"{semantics}:{query}"] = names

    def run_pass(trace: bool) -> None:
        for query, semantics in XML_WORKLOAD:
            engine.search(query, k=k, semantics=semantics, trace=trace)

    best_plain, best_traced = _interleaved_best(
        lambda: run_pass(False), lambda: run_pass(True), repeats
    )
    overhead_pct = (
        (best_traced - best_plain) / best_plain * 100.0 if best_plain else 0.0
    )
    min_stages = min(len(names) for names in span_coverage.values())
    return {
        "queries": len(XML_WORKLOAD),
        "repeats": repeats,
        "untraced_wall_s": round(best_plain, 6),
        "traced_wall_s": round(best_traced, 6),
        "overhead_pct": round(overhead_pct, 3),
        "divergence": divergence,
        "min_span_stages": min_stages,
        "span_coverage": span_coverage,
    }


def run_obs_benchmark(smoke: bool = False) -> Dict[str, object]:
    """Full benchmark; the dict becomes ``BENCH_obs.json``."""
    repeats = 3 if smoke else 7
    relational = measure_relational(repeats=repeats)
    xml = measure_xml(repeats=repeats)

    divergence = relational["divergence"] + xml["divergence"]
    min_stages = min(
        relational["min_span_stages"], xml["min_span_stages"]
    )
    # The XML workload runs in tens of microseconds per query, where a
    # single cache-line hiccup outweighs tracing; the relational bound
    # is the binding one, the XML bound is a sanity rail.
    xml_bound = OVERHEAD_BOUND_PCT if not smoke else 25.0
    passed = (
        relational["overhead_pct"] < OVERHEAD_BOUND_PCT
        and xml["overhead_pct"] < xml_bound
        and divergence == 0
        and min_stages >= MIN_SPAN_STAGES
    )
    return {
        "benchmark": "obs",
        "smoke": smoke,
        "relational": relational,
        "xml": xml,
        "acceptance": {
            "traced_overhead_pct": relational["overhead_pct"],
            "xml_overhead_pct": xml["overhead_pct"],
            "bound_pct": OVERHEAD_BOUND_PCT,
            "xml_bound_pct": xml_bound,
            "divergence": divergence,
            "min_span_stages": min_stages,
            "min_span_stages_required": MIN_SPAN_STAGES,
            "pass": passed,
        },
    }


# ----------------------------------------------------------------------
# pytest entry points (shape claims, conservative margins)
# ----------------------------------------------------------------------
def test_tracing_parity_and_coverage():
    from benchmarks.conftest import print_table

    stats = measure_relational(repeats=3)
    print_table(
        "E21 tracing overhead (biblio compute path)",
        ["mode", "wall_s"],
        [
            ["untraced", stats["untraced_wall_s"]],
            ["traced", stats["traced_wall_s"]],
        ],
    )
    assert stats["divergence"] == 0
    assert stats["min_span_stages"] >= MIN_SPAN_STAGES
    # Shape-only margin under pytest: parallel test workers make a tight
    # relative bound flaky; the script run enforces the real 5%.
    assert stats["overhead_pct"] < 50.0


def test_xml_tracing_parity():
    stats = measure_xml(repeats=3)
    assert stats["divergence"] == 0
    assert stats["min_span_stages"] >= MIN_SPAN_STAGES


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse
    from datetime import datetime, timezone

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats and a relaxed XML rail (CI gate)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_obs.json"),
        help="output JSON path (default: repo root BENCH_obs.json)",
    )
    args = parser.parse_args(argv)

    report = run_obs_benchmark(smoke=args.smoke)
    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    print(
        f"relational traced overhead: {acceptance['traced_overhead_pct']}% "
        f"(bound {acceptance['bound_pct']}%), "
        f"xml: {acceptance['xml_overhead_pct']}% "
        f"(bound {acceptance['xml_bound_pct']}%)"
    )
    print(
        f"divergence: {acceptance['divergence']}, "
        f"min span stages: {acceptance['min_span_stages']} "
        f"(required {acceptance['min_span_stages_required']})"
    )
    print(f"acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
