"""E12 — parallel CN processing (slides 129-133).

Claim: sharing-aware partitioning yields a lower simulated makespan
than sharing-blind greedy (LPT), which beats round-robin; exploiting
all sharing bounds the best case.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.parallel import (
    SharedExecutionGraph,
    partition_greedy,
    partition_round_robin,
    partition_sharing_aware,
    simulate_makespan,
)
from repro.schema_search.tuple_sets import TupleSets

QUERY = ["database", "john", "query"]
CORES = 4


@pytest.fixture(scope="module")
def shared_graph(biblio_db, biblio_index, biblio_schema_graph):
    ts = TupleSets(biblio_db, biblio_index, QUERY)
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=5)
    assert len(cns) >= CORES
    return SharedExecutionGraph(cns, ts)


def test_build_shared_graph(benchmark, biblio_db, biblio_index, biblio_schema_graph):
    ts = TupleSets(biblio_db, biblio_index, QUERY)
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=5)
    graph = benchmark(SharedExecutionGraph, cns, ts)
    assert graph.node_count() > 0


def test_shape(benchmark, shared_graph):
    policies = {
        "round-robin": partition_round_robin,
        "greedy (sharing-blind LPT)": partition_greedy,
        "sharing-aware greedy": partition_sharing_aware,
    }
    makespans = {
        name: simulate_makespan(shared_graph, policy(shared_graph, CORES))
        for name, policy in policies.items()
    }
    benchmark(partition_sharing_aware, shared_graph, CORES)
    rows = [(name, f"{m:.0f}") for name, m in makespans.items()]
    rows.append(("(total work, no sharing)",
                 f"{shared_graph.total_unshared_cost():.0f}"))
    rows.append(("(total work, full sharing)",
                 f"{shared_graph.total_shared_cost():.0f}"))
    print_table(
        f"E12: simulated makespan on {CORES} cores "
        f"({len(shared_graph.cns)} CNs, Q={' '.join(QUERY)})",
        ["policy", "makespan"],
        rows,
    )
    assert makespans["sharing-aware greedy"] <= makespans["round-robin"] + 1e-9
    assert (
        makespans["sharing-aware greedy"]
        <= makespans["greedy (sharing-blind LPT)"] + 1e-9
    )
    assert shared_graph.total_shared_cost() < shared_graph.total_unshared_cost()
