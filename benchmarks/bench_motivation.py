"""E0 — the tutorial's opening claims (slides 5-8).

* structure-aware search assembles answers whose keywords are scattered
  across tuples, which single-tuple (flat text) matching cannot recall
  at all (slide 7);
* exploiting structure avoids the slide-6 false positive, where "John"
  and "cloud" co-occur in one flat document but belong to different
  entities.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.index.text import tokenize
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.evaluate import all_results
from repro.schema_search.tuple_sets import TupleSets


def _intents(db, index, rng, n=25):
    """(author token, title token) pairs with ground truth: the author
    actually wrote a paper containing the title token."""
    intents = []
    writes = list(db.rows("write"))
    while len(intents) < n and writes:
        write = rng.choice(writes)
        author = db.table("author").by_key(write["aid"])
        paper = db.table("paper").by_key(write["pid"])
        a_tokens = tokenize(author["name"])
        p_tokens = tokenize(paper["title"])
        if not a_tokens or not p_tokens:
            continue
        intents.append((rng.choice(a_tokens), rng.choice(p_tokens)))
    return intents


def test_recall_of_scattered_answers(benchmark, biblio_db, biblio_index,
                                     biblio_schema_graph):
    rng = random.Random(29)
    intents = _intents(biblio_db, biblio_index, rng)
    flat_hits = 0
    structured_hits = 0
    for a_term, p_term in intents:
        query = [a_term, p_term]
        # flat: a single tuple must contain both keywords.
        if biblio_index.tuples_matching_all(query):
            flat_hits += 1
        ts = TupleSets(biblio_db, biblio_index, query)
        cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=4)
        if any(True for _ in all_results(cns, ts)):
            structured_hits += 1
    ts = TupleSets(biblio_db, biblio_index, list(intents[0]))
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=4)
    benchmark(lambda: all_results(cns, ts))
    n = len(intents)
    print_table(
        f"E0: answer recall over {n} author+topic intents",
        ["search", "intents answered", "recall"],
        [
            ("flat single-tuple match", flat_hits, f"{flat_hits / n:.2f}"),
            ("structure-aware (CNs)", structured_hits,
             f"{structured_hits / n:.2f}"),
        ],
    )
    assert structured_hits == n  # every intent is answerable via joins
    assert flat_hits < structured_hits  # most intents span tuples


def test_slide6_false_positive_avoided(benchmark):
    """The structured 'scientists' document: John's paper is about XML;
    Mary's is about cloud.  Q = {john, cloud}: a flat bag-of-words
    document matches, structure-aware XML search returns only the
    document root (the coarse, low-ranked connection), never a
    scientist-level answer."""
    from repro.datasets.xml_corpora import slide_scientist_tree
    from repro.xml_search.slca import slca_indexed_lookup_eager
    from repro.xmltree.index import XmlKeywordIndex

    tree = slide_scientist_tree()
    flat_tokens = set(tokenize(tree.text()))
    flat_matches = {"john", "cloud"} <= flat_tokens
    index = XmlKeywordIndex(tree)
    lists = index.match_lists(["john", "cloud"])
    slcas = benchmark(slca_indexed_lookup_eager, lists)
    scientist_answers = [
        d for d in slcas if tree.node_at(d) and tree.node_at(d).tag == "scientist"
    ]
    print_table(
        "E0b: Q={john, cloud} on the slide-6 document",
        ["search", "verdict"],
        [
            ("flat text match", "MATCHES (false positive)" if flat_matches else "no"),
            ("SLCA result level",
             "scientist (wrong)" if scientist_answers else
             f"root only ({len(slcas)} coarse result)"),
        ],
    )
    assert flat_matches  # the text strawman fires
    assert not scientist_answers  # no scientist-level false answer
    assert slcas == [(0,)]  # only the coarse root connection remains