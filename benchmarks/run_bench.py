"""Record the perf trajectory: run the registered benchmark suites, emit JSON.

    PYTHONPATH=src python benchmarks/run_bench.py
        [--suite api|serving|sharding|durability|storage|query|all]
        [--out PATH] [--smoke]

Future PRs re-run this entry point and compare against the committed
``BENCH_serving.json`` / ``BENCH_sharding.json`` /
``BENCH_durability.json`` / ``BENCH_storage.json`` /
``BENCH_query.json`` to keep the serving, scale-out, durability,
storage and query-front-end paths from regressing.  ``--out`` applies
when a single suite is selected; with ``--suite all`` each suite
writes its default file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.bench_api import run_api_benchmark  # noqa: E402
from benchmarks.bench_durability import run_durability_benchmark  # noqa: E402
from benchmarks.bench_query import run_query_benchmark  # noqa: E402
from benchmarks.bench_serving import run_serving_benchmark  # noqa: E402
from benchmarks.bench_sharding import run_sharding_benchmark  # noqa: E402
from benchmarks.bench_storage import run_storage_benchmark  # noqa: E402


def _write(report: dict, out_path: str) -> None:
    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {out_path}")


def _run_serving(args: argparse.Namespace, out_path: str) -> bool:
    report = run_serving_benchmark(workload_size=args.workload_size)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"warm speedup (biblio): {acceptance['warm_speedup_biblio']}x "
        f"(min {acceptance['warm_speedup_min']}x)"
    )
    print(
        f"batch speedup (biblio): {acceptance['batch_speedup_biblio']}x "
        f"(min {acceptance['batch_speedup_min']}x)"
    )
    print(f"serving acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


def _run_sharding(args: argparse.Namespace, out_path: str) -> bool:
    report = run_sharding_benchmark(smoke=args.smoke)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"sharding speedup at 4 shards (biblio): "
        f"{acceptance['speedup_4_shards_biblio']}x "
        f"(min {acceptance['speedup_min']}x), pruned fraction "
        f"{acceptance['pruned_fraction_4_shards']}, "
        f"divergences {acceptance['divergences']}"
    )
    print(f"sharding acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


def _run_durability(args: argparse.Namespace, out_path: str) -> bool:
    report = run_durability_benchmark(smoke=args.smoke)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"durability: divergence {acceptance['divergence']}, fsck problems "
        f"{acceptance['fsck_problems']}, replay counts exact "
        f"{acceptance['replay_counts_exact']}"
    )
    print(f"durability acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


def _run_api(args: argparse.Namespace, out_path: str) -> bool:
    report = run_api_benchmark(smoke=args.smoke)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"api: uncontended {report['uncontended']['qps']} qps "
        f"p99 {report['uncontended']['p99_ms']}ms; at 2x load p99 ratio "
        f"{acceptance['p99_ratio']} (max {acceptance['p99_ratio_max']}), "
        f"shed rate {report['overload_2x']['shed_rate']}, "
        f"5xx-free {acceptance['no_5xx']}, "
        f"swap under load {acceptance['swap_completed_under_load']}"
    )
    print(f"api acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


def _run_storage(args: argparse.Namespace, out_path: str) -> bool:
    report = run_storage_benchmark(smoke=args.smoke)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"storage: memory ratios vs dict columnar "
        f"{acceptance['memory_ratio_columnar']}x / disk "
        f"{acceptance['memory_ratio_disk']}x (min "
        f"{acceptance['memory_ratio_min']}x), divergences "
        f"{acceptance['divergences']}, lazy page-in "
        f"{acceptance['lazy_page_in']}"
    )
    print(f"storage acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


def _run_query_suite(args: argparse.Namespace, out_path: str) -> bool:
    report = run_query_benchmark(smoke=args.smoke)
    _write(report, out_path)
    acceptance = report["acceptance"]
    print(
        f"query: parse overhead {acceptance['overhead_pct']}% "
        f"(max {acceptance['overhead_pct_max']}%), pushdown speedup "
        f"{report['predicate_pushdown']['speedup_vs_posthoc']}x, "
        f"only-in-range {acceptance['pushdown_only_in_range']}, "
        f"divergences {acceptance['divergences']}"
    )
    print(f"query acceptance pass: {acceptance['pass']}")
    return bool(acceptance["pass"])


SUITES = {
    "api": ("BENCH_api.json", _run_api),
    "serving": ("BENCH_serving.json", _run_serving),
    "sharding": ("BENCH_sharding.json", _run_sharding),
    "durability": ("BENCH_durability.json", _run_durability),
    "storage": ("BENCH_storage.json", _run_storage),
    "query": ("BENCH_query.json", _run_query_suite),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        default="serving",
        choices=sorted(SUITES) + ["all"],
        help="benchmark suite to run (default: serving)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (single suite only; default: repo root "
        "BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--workload-size", type=int, default=50, help="mixed workload size"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="sharding/durability: smaller datasets and relaxed gates",
    )
    args = parser.parse_args(argv)

    names = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.out is not None and len(names) > 1:
        parser.error("--out is only valid with a single --suite")
    ok = True
    for name in names:
        default_out, runner = SUITES[name]
        out_path = args.out or os.path.join(_REPO_ROOT, default_out)
        ok = runner(args, out_path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
