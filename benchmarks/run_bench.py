"""Record the perf trajectory: run the serving benchmark, emit JSON.

    PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_serving.json]

Future PRs re-run this entry point and compare against the committed
``BENCH_serving.json`` to keep the serving path from regressing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.bench_serving import run_serving_benchmark  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_serving.json"),
        help="output JSON path (default: repo root BENCH_serving.json)",
    )
    parser.add_argument(
        "--workload-size", type=int, default=50, help="mixed workload size"
    )
    args = parser.parse_args(argv)

    report = run_serving_benchmark(workload_size=args.workload_size)
    report["generated_at"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    report["python"] = sys.version.split()[0]

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    print(
        f"warm speedup (biblio): {acceptance['warm_speedup_biblio']}x "
        f"(min {acceptance['warm_speedup_min']}x)"
    )
    print(
        f"batch speedup (biblio): {acceptance['batch_speedup_biblio']}x "
        f"(min {acceptance['batch_speedup_min']}x)"
    )
    print(f"acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
