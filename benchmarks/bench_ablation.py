"""Ablation studies for the design choices DESIGN.md calls out.

* A1 — BANKS edge weighting (slide 41, 1/degree idea): without the
  log-indegree penalty, answer trees route through hub tuples; with it,
  trees avoid hubs (lower mean internal degree).
* A2 — cleaner segment penalty ("prevent fragmentation", slide 68):
  removing the penalty fragments multi-token segments.
* A3 — SPARK2 partition-graph pruning (slide 135): evaluations saved on
  a query whose small CNs come up empty.
* A4 — operator-mesh structural sharing (slide 134): distinct operators
  vs unshared plan steps.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.ambiguity.cleaning import QueryCleaner
from repro.graph.data_graph import build_data_graph
from repro.graph.weights import BanksWeighting
from repro.graph_search.banks import banks_backward
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.mesh import OperatorMesh
from repro.schema_search.spark2 import (
    evaluate_with_pruning,
    evaluate_without_pruning,
)
from repro.schema_search.tuple_sets import TupleSets


def _hub_graph(hub_penalty: bool):
    """Two keyword nodes joined by (a) a 2-edge path through a degree-30
    hub and (b) a 3-edge path through low-degree connectors."""
    import math

    from repro.graph.data_graph import DataGraph
    from repro.relational.database import TupleId

    g = DataGraph()
    k1, k2 = TupleId("t", 0), TupleId("t", 1)
    hub = TupleId("t", 2)
    hub_degree = 30
    hub_weight = 1.0 + math.log1p(hub_degree) if hub_penalty else 1.0
    g.add_edge(k1, hub, hub_weight)
    g.add_edge(hub, k2, hub_weight)
    for i in range(hub_degree - 2):  # make the hub an actual hub
        g.add_edge(hub, TupleId("t", 100 + i), hub_weight)
    m1, m2 = TupleId("t", 3), TupleId("t", 4)
    g.add_edge(k1, m1, 1.0)
    g.add_edge(m1, m2, 1.0)
    g.add_edge(m2, k2, 1.0)
    return g, k1, k2, hub


def test_banks_weighting_ablation(benchmark):
    """Slide 41's 1/degree idea: without the log-indegree edge penalty
    the answer tree routes through the hub (2 hops beat 3); with it the
    low-degree path wins."""
    uniform_graph, k1, k2, hub = _hub_graph(hub_penalty=False)
    weighted_graph, *_ = _hub_graph(hub_penalty=True)
    uniform = banks_backward(uniform_graph, [[k1], [k2]], k=1)
    weighted = banks_backward(weighted_graph, [[k1], [k2]], k=1)
    benchmark(banks_backward, weighted_graph, [[k1], [k2]], 1)
    rows = [
        ("uniform edges", "yes" if hub in uniform.trees[0].nodes else "no"),
        ("banks log-indegree", "yes" if hub in weighted.trees[0].nodes else "no"),
    ]
    print_table("A1: does the top answer tree route through the hub?",
                ["edge weighting", "through hub"], rows)
    assert hub in uniform.trees[0].nodes
    assert hub not in weighted.trees[0].nodes


def test_cleaner_penalty_ablation(benchmark, biblio_index):
    """Slide 68's 'prevent fragmentation': over a 40-query workload the
    per-segment penalty lowers the mean segment count without touching
    correctly typed tokens."""
    import random

    rng = random.Random(3)
    vocab = [t for t in biblio_index.vocabulary if len(t) >= 4]
    queries = [rng.sample(vocab, 2) for _ in range(40)]
    rows = []
    mean_segments = {}
    for penalty in (0.4, 1.0):
        cleaner = QueryCleaner(biblio_index, segment_penalty=penalty)
        total_segments = 0
        preserved = 0
        for query in queries:
            result = cleaner.clean(query)
            total_segments += len(result.segments)
            if result.cleaned_tokens() == [t.lower() for t in query]:
                preserved += 1
        mean_segments[penalty] = total_segments / len(queries)
        rows.append(
            (f"penalty {penalty}", f"{mean_segments[penalty]:.2f}",
             f"{preserved / len(queries):.2f}")
        )
    cleaner = QueryCleaner(biblio_index, segment_penalty=0.4)
    benchmark(cleaner.clean, queries[0])
    print_table("A2: fragmentation penalty over 40 correct 2-token queries",
                ["cleaner", "mean #segments", "token accuracy"], rows)
    assert mean_segments[0.4] <= mean_segments[1.0]


def _sparse_citation_db():
    """A bibliographic slice whose cite relation is empty: every CN
    routing through `cite` evaluates empty, so SPARK2 pruning can skip
    its supersets."""
    from repro.datasets.bibliographic import bibliographic_schema
    from repro.relational.database import Database

    db = Database(bibliographic_schema(with_cite=True))
    for aid, name in enumerate(["ada xml", "bob cloud", "carol xml", "dan cloud"]):
        db.insert("author", aid=aid, name=name)
    db.insert("conference", cid=0, name="sigmod", year=2007, location="beijing")
    titles = ["xml search", "cloud systems", "xml views", "cloud storage"]
    for pid, title in enumerate(titles):
        db.insert("paper", pid=pid, title=title, abstract=None, cid=0)
    for wid, (aid, pid) in enumerate([(0, 0), (1, 1), (2, 2), (3, 3)]):
        db.insert("write", wid=wid, aid=aid, pid=pid)
    return db


def test_spark2_pruning_ablation(benchmark):
    from repro.index.inverted import InvertedIndex
    from repro.relational.schema_graph import SchemaGraph

    db = _sparse_citation_db()
    index = InvertedIndex(db)
    query = ["xml", "cloud"]
    ts = TupleSets(db, index, query)
    cns = generate_candidate_networks(SchemaGraph(db.schema), ts, max_size=5)
    pruned = evaluate_with_pruning(cns, ts)
    baseline = evaluate_without_pruning(cns, ts)
    benchmark(evaluate_with_pruning, cns, ts)
    rows = [
        ("no pruning", baseline.evaluated, 0, baseline.stats.tuples_read),
        ("partition-graph pruning", pruned.evaluated, pruned.pruned,
         pruned.stats.tuples_read),
    ]
    print_table(f"A3: SPARK2 pruning over {len(cns)} CNs (empty cite relation)",
                ["mode", "evaluated", "pruned", "tuples_read"], rows)
    assert pruned.evaluated + pruned.pruned == len(cns)
    assert pruned.pruned > 0
    pruned_keys = {frozenset(r.tuple_ids()) for _, r in pruned.results}
    baseline_keys = {frozenset(r.tuple_ids()) for _, r in baseline.results}
    assert pruned_keys == baseline_keys
    assert pruned.stats.tuples_read <= baseline.stats.tuples_read


def test_mesh_sharing_ablation(
    benchmark, biblio_db, biblio_index, biblio_schema_graph
):
    query = ["database", "john"]
    ts = TupleSets(biblio_db, biblio_index, query)
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=5)
    mesh = benchmark(OperatorMesh, cns, query)
    print_table(
        f"A4: operator mesh sharing over {len(cns)} CNs",
        ["metric", "value"],
        [
            ("unshared plan steps", mesh.total_plan_steps()),
            ("mesh operators", mesh.operator_count),
            ("sharing ratio", f"{mesh.sharing_ratio():.2f}"),
        ],
    )
    assert mesh.operator_count < mesh.total_plan_steps()
