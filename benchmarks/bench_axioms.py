"""E16 — axiomatic evaluation matrix (slides 107-109).

Claim: the axioms discriminate between result semantics — all-LCA
preserves old results under data additions but violates query
monotonicity; SLCA/ELCA can drop old results (preserve-mode data
monotonicity violations) while keeping counts stable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.eval.axioms import axiom_matrix, standard_engines

AXIOMS = [
    "data-monotonicity",
    "data-monotonicity-count",
    "data-consistency",
    "query-monotonicity",
    "query-consistency",
]


def test_axiom_matrix(benchmark, bib_xml):
    keywords = ["xml", "john"]
    extras = ["search", "paper"]
    matrix = benchmark(
        axiom_matrix, standard_engines(), bib_xml, keywords, extras
    )
    rows = []
    for engine, reports in matrix.items():
        rows.append(
            tuple(
                [engine]
                + [
                    "OK" if reports[a].satisfied else f"VIOLATED ({len(reports[a].violations)})"
                    for a in AXIOMS
                ]
            )
        )
    print_table(
        "E16: axiom satisfaction matrix (Q=xml john, +{search, paper})",
        ["engine"] + AXIOMS,
        rows,
    )
    # all-LCA never loses an old result when data is added.
    assert matrix["all-lca"]["data-monotonicity"].satisfied
    # every engine satisfies query consistency on this corpus (AND
    # semantics results always contain the added keyword).
    for engine in matrix:
        assert matrix[engine]["query-consistency"].satisfied
    # every report actually ran checks.
    for reports in matrix.values():
        for axiom in AXIOMS:
            assert reports[axiom].checks > 0


def test_crafted_discriminating_instances(benchmark):
    """The axioms discriminate between semantics on adversarial inputs
    (the random corpus above rarely triggers them): SLCA and ELCA drop
    old results when a data addition creates a deeper contains-all
    node; all-LCA never does but fails query monotonicity."""
    from repro.eval.axioms import (
        all_lca_engine,
        check_data_monotonicity,
        check_query_monotonicity,
        elca_engine,
        slca_engine,
    )
    from repro.xmltree.build import element as e
    from repro.xmltree.build import text_element as t

    slca_doc = e("root", e("a", e("b", t("x", "k1")), e("c", t("y", "k2"))))
    elca_doc = e("root", e("x", t("m", "k1")), e("y", t("n", "k2")))
    qmono_doc = e(
        "root", e("p", t("x", "k1"), t("y", "k2")), e("q", t("z", "k2"))
    )
    parents_slca = [(0, 0, 0)]
    parents_elca = [(0, 1)]
    outcomes = {
        ("slca", "data-monotonicity"): check_data_monotonicity(
            slca_engine, slca_doc, ["k1", "k2"], parents_slca, mode="preserve"
        ).satisfied,
        ("elca", "data-monotonicity"): check_data_monotonicity(
            elca_engine, elca_doc, ["k1", "k2"], parents_elca, mode="preserve"
        ).satisfied,
        ("all-lca", "data-monotonicity"): check_data_monotonicity(
            all_lca_engine, slca_doc, ["k1", "k2"], parents_slca, mode="preserve"
        ).satisfied,
        ("all-lca", "query-monotonicity"): check_query_monotonicity(
            all_lca_engine, qmono_doc, ["k1"], ["k2"]
        ).satisfied,
    }
    benchmark(
        check_data_monotonicity,
        slca_engine, slca_doc, ["k1", "k2"], parents_slca, "preserve",
    )
    rows = [
        (engine, axiom, "OK" if ok else "VIOLATED")
        for (engine, axiom), ok in outcomes.items()
    ]
    print_table("E16b: crafted adversarial instances",
                ["engine", "axiom", "verdict"], rows)
    assert not outcomes[("slca", "data-monotonicity")]
    assert not outcomes[("elca", "data-monotonicity")]
    assert outcomes[("all-lca", "data-monotonicity")]
    assert not outcomes[("all-lca", "query-monotonicity")]
