"""E19 — hot-path query serving: cold vs warm vs batched throughput.

Claims (slides 120-130, materialised indexes + shared/parallel query
execution; PAPERS.md: EMBANKS, BLINKS):

1. Warm-cache ``search()`` (LRU hit over memoised substrates) is >= 5x
   faster than the cold path on the bibliographic dataset.
2. An 8-worker :class:`~repro.perf.batch.BatchSearchExecutor` serving a
   50-query mixed workload (Zipf-repeated queries, mixed methods)
   delivers >= 2x the throughput of the pre-PR serving path — a
   single-threaded loop that recomputes every query from scratch
   (``enable_caches=False``).

Runnable under pytest (asserts the shape claims) or through
``benchmarks/run_bench.py``, which records the numbers in
``BENCH_serving.json`` as the start of the perf trajectory.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.datasets.products import generate_product_db

# Unique query pools; tokens are drawn from the generators' word pools
# so most queries produce non-empty result sets.  Ordered head-first for
# the Zipf workload: the popular queries are the costly ones — exactly
# the log shape a result cache exists for (frequent short ambiguous
# queries touch the most tuples).
BIBLIO_QUERIES: List[Tuple[str, str]] = [
    ("database query", "schema"),
    ("smith database", "distinct_root"),
    ("xml index", "schema"),
    ("john database", "banks2"),
    ("xml keyword", "banks"),
    ("smith keyword search", "schema"),
    ("john database", "schema"),
    ("chen mining", "schema"),
    ("ullman join", "schema"),
    ("widom xml", "schema"),
    ("widom xml", "banks2"),
    ("widom query", "distinct_root"),
]

PRODUCT_QUERIES: List[Tuple[str, str]] = [
    ("lenovo laptop", "schema"),
    ("ibm heritage", "schema"),
    ("light laptop", "schema"),
    ("apple mac", "schema"),
    ("cheap tablet", "schema"),
    ("small monitor", "schema"),
    ("dell desktop", "schema"),
    ("asus tablet", "schema"),
]


def zipf_workload(
    pool: Sequence[Tuple[str, str]], size: int, skew: float = 1.2
) -> List[Tuple[str, str]]:
    """Deterministic Zipf-repeated workload over *pool* (head-heavy mix)."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(pool))]
    total = sum(weights)
    counts = [max(1, round(size * w / total)) for w in weights]
    workload: List[Tuple[str, str]] = []
    rank = 0
    while len(workload) < size:
        for i, query in enumerate(pool):
            take = counts[i] if rank == 0 else 1
            for _ in range(take):
                if len(workload) >= size:
                    break
                workload.append(query)
        rank += 1
    # Interleave deterministically so repeats are spread out.
    workload.sort(key=lambda q: (hash(q) % 977, q))
    return workload[:size]


def _timed(fn: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def measure_cold_warm(
    db_factory: Callable[[], object],
    queries: Sequence[Tuple[str, str]],
    k: int = 5,
) -> Dict[str, object]:
    """First-touch vs repeat latency for every query in *queries*."""
    engine = KeywordSearchEngine(db_factory())
    # Offline build (index + graphs) is a one-time cost, reported apart.
    offline_s, _ = _timed(lambda: (engine.index, engine.schema_graph, engine.data_graph))

    cold_times: List[float] = []
    warm_times: List[float] = []
    for text, method in queries:
        elapsed, _ = _timed(lambda: engine.search(text, k=k, method=method))
        cold_times.append(elapsed)
    for text, method in queries:
        elapsed, _ = _timed(lambda: engine.search(text, k=k, method=method))
        warm_times.append(elapsed)

    cold_total = sum(cold_times)
    warm_total = sum(warm_times)
    return {
        "queries": len(queries),
        "offline_build_s": round(offline_s, 6),
        "cold_total_s": round(cold_total, 6),
        "warm_total_s": round(warm_total, 6),
        "cold_mean_ms": round(1e3 * statistics.mean(cold_times), 4),
        "warm_mean_ms": round(1e3 * statistics.mean(warm_times), 4),
        "warm_speedup": round(cold_total / warm_total, 2) if warm_total else float("inf"),
        "result_cache": engine.cache_stats()["results"],
    }


def measure_batch(
    db_factory: Callable[[], object],
    workload: Sequence[Tuple[str, str]],
    k: int = 5,
    workers: int = 8,
) -> Dict[str, object]:
    """Naive sequential serving vs concurrent cached batch serving.

    The baseline is the pre-PR serving path: one thread, no result or
    substrate reuse, every query recomputed from scratch.  The batch
    path shares memoised substrates and the result LRU across an
    8-worker pool with duplicate-query coalescing.
    """
    # Baseline: caches off, sequential.
    seq_engine = KeywordSearchEngine(db_factory(), enable_caches=False)
    seq_engine.index, seq_engine.schema_graph, seq_engine.data_graph  # offline build
    seq_s, seq_results = _timed(
        lambda: [
            seq_engine.search(text, k=k, method=method)
            for text, method in workload
        ]
    )

    # Serving layer: caches on, thread pool, duplicate coalescing.
    batch_engine = KeywordSearchEngine(db_factory())
    batch_engine.index, batch_engine.schema_graph, batch_engine.data_graph
    batch_s, batch_results = _timed(
        lambda: batch_engine.search_many(
            [(text, method, k) for text, method in workload],
            max_workers=workers,
        )
    )

    matches = sum(
        1
        for a, b in zip(seq_results, batch_results)
        if [(r.score, r.network) for r in a] == [(r.score, r.network) for r in b]
    )
    return {
        "workload": len(workload),
        "distinct_queries": len(set(workload)),
        "workers": workers,
        "single_threaded_uncached_s": round(seq_s, 6),
        "batched_s": round(batch_s, 6),
        "batch_speedup": round(seq_s / batch_s, 2) if batch_s else float("inf"),
        "single_threaded_qps": round(len(workload) / seq_s, 2),
        "batched_qps": round(len(workload) / batch_s, 2),
        "results_identical": matches == len(workload),
    }


def run_serving_benchmark(workload_size: int = 50) -> Dict[str, object]:
    """Full serving benchmark; the dict becomes ``BENCH_serving.json``."""
    biblio = lambda: generate_bibliographic_db(seed=7)
    products = lambda: generate_product_db(seed=13)
    report: Dict[str, object] = {
        "benchmark": "serving",
        "workload_size": workload_size,
        "datasets": {
            "biblio": {
                "cold_warm": measure_cold_warm(biblio, BIBLIO_QUERIES),
                "batch": measure_batch(
                    biblio, zipf_workload(BIBLIO_QUERIES, workload_size)
                ),
            },
            "products": {
                "cold_warm": measure_cold_warm(products, PRODUCT_QUERIES),
                "batch": measure_batch(
                    products, zipf_workload(PRODUCT_QUERIES, workload_size)
                ),
            },
        },
    }
    biblio_stats = report["datasets"]["biblio"]
    report["acceptance"] = {
        "warm_speedup_biblio": biblio_stats["cold_warm"]["warm_speedup"],
        "warm_speedup_min": 5.0,
        "batch_speedup_biblio": biblio_stats["batch"]["batch_speedup"],
        "batch_speedup_min": 2.0,
        "pass": (
            biblio_stats["cold_warm"]["warm_speedup"] >= 5.0
            and biblio_stats["batch"]["batch_speedup"] >= 2.0
            and biblio_stats["batch"]["results_identical"]
        ),
    }
    return report


# ----------------------------------------------------------------------
# pytest entry points (shape claims, conservative margins)
# ----------------------------------------------------------------------
def test_warm_cache_speedup():
    from benchmarks.conftest import print_table

    stats = measure_cold_warm(
        lambda: generate_bibliographic_db(seed=7), BIBLIO_QUERIES
    )
    print_table(
        "E19a serving: cold vs warm (biblio)",
        ["pass", "total_s", "mean_ms"],
        [
            ["cold", stats["cold_total_s"], stats["cold_mean_ms"]],
            ["warm", stats["warm_total_s"], stats["warm_mean_ms"]],
        ],
    )
    assert stats["warm_speedup"] >= 5.0


def test_batched_throughput():
    from benchmarks.conftest import print_table

    stats = measure_batch(
        lambda: generate_bibliographic_db(seed=7),
        zipf_workload(BIBLIO_QUERIES, 50),
    )
    print_table(
        "E19b serving: sequential-uncached vs batched (biblio, 50 queries)",
        ["mode", "total_s", "qps"],
        [
            [
                "1 thread, no caches",
                stats["single_threaded_uncached_s"],
                stats["single_threaded_qps"],
            ],
            ["8 workers, shared caches", stats["batched_s"], stats["batched_qps"]],
        ],
    )
    assert stats["results_identical"]
    assert stats["batch_speedup"] >= 2.0
