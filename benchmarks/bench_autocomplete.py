"""E8 — TASTIER type-ahead search (slides 71-73).

Claims: the δ-step forward index prunes the candidate set sharply
(slide 73: {11, 12, 78} -> {12}); per-keystroke latency falls as the
prefix gets longer (smaller trie ranges).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.ambiguity.autocomplete import Tastier


@pytest.fixture(scope="module")
def tastier(biblio_graph, biblio_index):
    return Tastier(biblio_graph, biblio_index, delta=2)


def test_pruning_power(benchmark, biblio_graph, biblio_index):
    """Aggregate pruning over a 40-query random-prefix workload: the
    δ-forward index discards candidates that cannot reach the remaining
    prefixes (slide 73's {11, 12, 78} -> {12})."""
    import random

    rng = random.Random(3)
    vocab = [w for w in biblio_index.vocabulary if len(w) >= 4]
    workload = [
        [a[:3], b[:3]] for a, b in (rng.sample(vocab, 2) for _ in range(40))
    ]
    rows = []
    totals = {}
    for delta in (1, 2):
        engine = Tastier(biblio_graph, biblio_index, delta=delta)
        initial = pruned = answers = 0
        for prefixes in workload:
            result = engine.search(prefixes, k=5)
            initial += result.candidates_initial
            pruned += result.candidates_after_pruning
            answers += len(result.answers)
        totals[delta] = (initial, pruned)
        rows.append((delta, initial, pruned, answers))
    engine = Tastier(biblio_graph, biblio_index, delta=1)
    benchmark(engine.search, workload[0], 5)
    print_table(
        "E8a: delta-forward pruning over 40 random 2-prefix queries",
        ["delta", "initial_candidates", "after_pruning", "answers"],
        rows,
    )
    for delta, (initial, pruned) in totals.items():
        assert pruned <= initial
    # Tighter delta prunes more aggressively.
    assert totals[1][1] <= totals[2][1]
    assert totals[1][1] < totals[1][0]


def test_latency_vs_prefix_length(benchmark, tastier):
    prefixes = ["d", "da", "dat", "data"]
    rows = []
    timings = []
    for prefix in prefixes:
        start = time.perf_counter()
        for _ in range(10):
            result = tastier.search(["john", prefix], k=5)
        elapsed = (time.perf_counter() - start) / 10
        timings.append(elapsed)
        rows.append(
            (prefix, f"{elapsed * 1e3:.2f}ms", result.candidates_initial)
        )
    benchmark(tastier.search, ["john", "data"], 5)
    print_table("E8b: keystroke latency vs prefix length",
                ["prefix", "latency", "candidates"], rows)
    # Longer prefixes never cost (much) more than single-char prefixes.
    assert timings[-1] <= timings[0] * 2.0


def test_completions(benchmark, tastier):
    completions = benchmark(tastier.complete_keyword, "dat", 8)
    assert "database" in completions or any(
        c.startswith("dat") for c in completions
    )
