"""E7 — keyword query cleaning (slides 66-70).

Claims: noisy-channel + segmentation cleaning recovers intended queries
under typo noise; the XClean-style non-empty-result mode achieves a
100% non-empty rate where the result-blind cleaner may emit dead
queries (slide 70's comparison table).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.ambiguity.cleaning import QueryCleaner


def _typo(rng, token):
    """One random edit: substitution, deletion or transposition."""
    if len(token) < 3:
        return token
    kind = rng.choice(["sub", "del", "swap"])
    pos = rng.randrange(1, len(token) - 1)
    letters = "abcdefghijklmnopqrstuvwxyz"
    if kind == "sub":
        return token[:pos] + rng.choice(letters) + token[pos + 1 :]
    if kind == "del":
        return token[:pos] + token[pos + 1 :]
    return token[:pos] + token[pos + 1] + token[pos] + token[pos + 2 :]


def _workload(index, n_queries, noise, seed):
    rng = random.Random(seed)
    vocab = [t for t in index.vocabulary if len(t) >= 4]
    workload = []
    for _ in range(n_queries):
        intended = rng.sample(vocab, 2)
        observed = [
            _typo(rng, t) if rng.random() < noise else t for t in intended
        ]
        workload.append((intended, observed))
    return workload


def _accuracy(cleaner, workload):
    recovered = 0
    nonempty = 0
    for intended, observed in workload:
        result = cleaner.clean(observed)
        cleaned = result.cleaned_tokens()
        if sorted(cleaned) == sorted(intended):
            recovered += 1
        if all(seg.support > 0 for seg in result.segments):
            nonempty += 1
    return recovered / len(workload), nonempty / len(workload)


def test_cleaning_accuracy_vs_noise(benchmark, biblio_index):
    cleaner = QueryCleaner(biblio_index)
    rows = []
    accuracies = {}
    for noise in (0.0, 0.3, 0.6, 1.0):
        workload = _workload(biblio_index, 40, noise, seed=int(noise * 10) + 1)
        accuracy, _ = _accuracy(cleaner, workload)
        accuracies[noise] = accuracy
        rows.append((noise, f"{accuracy:.2f}"))
    workload = _workload(biblio_index, 10, 0.5, seed=9)
    benchmark(lambda: [cleaner.clean(obs) for _, obs in workload])
    print_table("E7a: recovery accuracy vs typo noise",
                ["noise", "accuracy"], rows)
    assert accuracies[0.0] >= 0.95  # clean queries stay clean
    assert accuracies[1.0] >= 0.5  # most single-typo tokens recovered


def test_xclean_nonempty_guarantee(benchmark, biblio_index):
    blind = QueryCleaner(biblio_index, require_nonempty=False)
    aware = QueryCleaner(biblio_index, require_nonempty=True)
    workload = _workload(biblio_index, 50, 0.8, seed=3)
    blind_acc, blind_nonempty = _accuracy(blind, workload)
    aware_acc, aware_nonempty = _accuracy(aware, workload)
    benchmark(lambda: [aware.clean(obs) for _, obs in workload[:10]])
    print_table(
        "E7b: result-blind (PY08-style) vs result-aware (XClean-style)",
        ["cleaner", "accuracy", "nonempty_rate"],
        [
            ("result-blind", f"{blind_acc:.2f}", f"{blind_nonempty:.2f}"),
            ("result-aware", f"{aware_acc:.2f}", f"{aware_nonempty:.2f}"),
        ],
    )
    assert aware_nonempty >= blind_nonempty
    assert aware_nonempty >= 0.95
