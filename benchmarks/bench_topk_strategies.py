"""E2 — top-k strategies (DISCOVER2, slide 116).

Claim: all four strategies return the same top-k; the pipelines touch
less data — Global Pipeline <= Single Pipeline <= Sparse <= Naive in
tuples read (and in executed batches).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.topk import (
    topk_global_pipeline,
    topk_naive,
    topk_single_pipeline,
    topk_sparse,
)
from repro.schema_search.tuple_sets import TupleSets

QUERY = ["database", "john"]
K = 5

STRATEGIES = [
    ("naive", topk_naive),
    ("sparse", topk_sparse),
    ("single-pipeline", topk_single_pipeline),
    ("global-pipeline", topk_global_pipeline),
]


@pytest.fixture(scope="module")
def setup(biblio_db, biblio_index, biblio_schema_graph):
    ts = TupleSets(biblio_db, biblio_index, QUERY)
    cns = generate_candidate_networks(biblio_schema_graph, ts, max_size=5)
    assert len(cns) > 1  # the strategies only differ with several CNs
    return cns, ts, biblio_index


@pytest.mark.parametrize("name,strategy", STRATEGIES)
def test_strategy(benchmark, setup, name, strategy):
    cns, ts, index = setup
    result = benchmark(strategy, cns, ts, index, QUERY, K)
    assert len(result.results) <= K


def test_all_agree_and_pipelines_cheaper(benchmark, setup):
    cns, ts, index = setup
    outcomes = {
        name: strategy(cns, ts, index, QUERY, k=K) for name, strategy in STRATEGIES
    }
    benchmark(topk_global_pipeline, cns, ts, index, QUERY, K)
    rows = [
        (
            name,
            outcome.stats.tuples_read,
            outcome.stats.joins_executed,
            outcome.cns_executed,
            outcome.batches,
        )
        for name, outcome in outcomes.items()
    ]
    print_table(
        f"E2: top-{K} strategies (Q={' '.join(QUERY)}, {len(cns)} CNs)",
        ["strategy", "tuples_read", "join_probes", "CNs_executed", "batches"],
        rows,
    )
    reference = outcomes["naive"].scores()
    for name, outcome in outcomes.items():
        assert outcome.scores() == reference, name
    assert outcomes["sparse"].stats.tuples_read <= outcomes["naive"].stats.tuples_read
    assert (
        outcomes["single-pipeline"].batches <= outcomes["sparse"].batches
    )
    assert (
        outcomes["global-pipeline"].batches
        <= outcomes["single-pipeline"].batches
    )
