"""E22 — sharded scatter-gather: scaling curve, parity, pruning.

Claims (ISSUE: sharded scale-out engine with scatter-gather top-k and
score-upper-bound pruning):

1. **Byte-identical top-k.**  For every query, shard count in
   {1, 2, 4, 8} and both partitioners, the sharded engine's top-k is
   byte-identical to the single ``KeywordSearchEngine``'s (divergence
   count must be 0).
2. **Cold-query speedup.**  On the enlarged bibliographic dataset the
   4-shard engine answers the cold workload (result cache bypassed,
   substrates warm — the serving steady state) at least ``MIN_SPEEDUP``
   times faster than the single engine.  The win comes from the global
   k-th-score threshold: shards stop evaluating anchor slots whose
   score upper bound falls below it, where the single engine's shared
   executor evaluates every candidate.
3. **Pruning effectiveness.**  The threshold skips a measurable
   fraction of the candidate slots (``pruned / (pruned + evaluated)``)
   on the joining dataset.  The single-table products dataset is the
   control: its queries return fewer than k matches, the threshold
   never engages, and the series documents the scatter overhead
   (parity must still hold exactly).

Runnable under pytest or as a script emitting ``BENCH_sharding.json``:

    PYTHONPATH=src python benchmarks/bench_sharding.py [--smoke] \
        [--out BENCH_sharding.json]
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.engine import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db
from repro.datasets.products import generate_product_db
from repro.sharding import ShardedSearchEngine

SHARD_COUNTS = [1, 2, 4, 8]
MIN_SPEEDUP = 2.0  # at 4 shards, biblio, cold workload
MIN_SPEEDUP_SMOKE = 1.3  # CI: smaller dataset, noisy runners
K = 10

BIBLIO_QUERIES = [
    "database keyword search",
    "john database",
    "xml query processing",
    "smith mining",
    "keyword join index",
    "chen database xml",
]

PRODUCT_QUERIES = [
    "lenovo laptop",
    "ibm thinkpad",
    "light small laptop",
    "laptop",
    "ibm",
    "small screen",
]


def _signature(results) -> bytes:
    """Canonical byte serialisation of a relational ResultSet."""
    payload = [
        [round(r.score, 9), r.network, [str(t) for t in r.tuple_ids()]]
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _cold_pass(engine, queries: List[str]) -> float:
    start = time.perf_counter()
    for query in queries:
        engine.search(query, k=K, use_cache=False)
    return time.perf_counter() - start


def _bench_dataset(
    name: str,
    db,
    queries: List[str],
    partitioner: str,
    repeats: int,
) -> Dict[str, object]:
    single = KeywordSearchEngine(db)
    # Warm the substrates (index, tuple sets, CN memos) and record the
    # reference signatures; the timed passes then measure evaluation,
    # which is what sharding changes.
    reference = {
        q: _signature(single.search(q, k=K, use_cache=False)) for q in queries
    }
    single_s = min(_cold_pass(single, queries) for _ in range(repeats))

    divergences = 0
    curve = []
    for n_shards in SHARD_COUNTS:
        sharded = ShardedSearchEngine(
            db, n_shards=n_shards, partitioner=partitioner
        )
        try:
            for query in queries:
                results = sharded.search(query, k=K, use_cache=False)
                if results.degraded or _signature(results) != reference[query]:
                    divergences += 1
            sharded.metrics.reset()
            elapsed_s = min(_cold_pass(sharded, queries) for _ in range(repeats))
            snap = sharded.metrics.snapshot()
            evaluated = snap.get("shard.evaluated", 0)
            pruned = snap.get("shard.pruned", 0)
            curve.append(
                {
                    "shards": n_shards,
                    "cold_ms": round(elapsed_s * 1000.0, 3),
                    "speedup": round(single_s / elapsed_s, 3),
                    "evaluated": evaluated,
                    "pruned": pruned,
                    "pruned_fraction": round(
                        pruned / max(1, pruned + evaluated), 4
                    ),
                    "partition": sharded.shard_stats(),
                }
            )
        finally:
            sharded.close()
    return {
        "dataset": name,
        "size": db.size(),
        "queries": len(queries),
        "partitioner": partitioner,
        "single_cold_ms": round(single_s * 1000.0, 3),
        "divergences": divergences,
        "curve": curve,
    }


def run_sharding_benchmark(smoke: bool = False) -> Dict[str, object]:
    repeats = 2 if smoke else 3
    if smoke:
        biblio = generate_bibliographic_db(
            n_authors=60, n_conferences=8, n_papers=150, seed=7
        )
        products = generate_product_db(n_products=400, seed=13)
    else:
        biblio = generate_bibliographic_db(
            n_authors=200, n_conferences=10, n_papers=600, seed=7
        )
        products = generate_product_db(n_products=2500, seed=13)

    biblio_report = _bench_dataset(
        "biblio", biblio, BIBLIO_QUERIES, "affinity", repeats
    )
    products_report = _bench_dataset(
        "products", products, PRODUCT_QUERIES, "hash", repeats
    )

    by_shards = {row["shards"]: row for row in biblio_report["curve"]}
    speedup_4 = by_shards[4]["speedup"]
    pruned_fraction_4 = by_shards[4]["pruned_fraction"]
    min_speedup = MIN_SPEEDUP_SMOKE if smoke else MIN_SPEEDUP
    acceptance = {
        "speedup_4_shards_biblio": speedup_4,
        "speedup_min": min_speedup,
        "pruned_fraction_4_shards": pruned_fraction_4,
        "divergences": biblio_report["divergences"]
        + products_report["divergences"],
        "pass": (
            speedup_4 >= min_speedup
            and pruned_fraction_4 > 0.0
            and biblio_report["divergences"] == 0
            and products_report["divergences"] == 0
        ),
    }
    return {
        "benchmark": "sharding",
        "smoke": smoke,
        "k": K,
        "shard_counts": SHARD_COUNTS,
        "datasets": [biblio_report, products_report],
        "acceptance": acceptance,
    }


# ----------------------------------------------------------------------
# Pytest entry points (quick parity-focused checks)
# ----------------------------------------------------------------------
def test_sharded_parity_smoke():
    db = generate_bibliographic_db(
        n_authors=30, n_conferences=4, n_papers=60, seed=7
    )
    single = KeywordSearchEngine(db)
    for query in BIBLIO_QUERIES[:3]:
        expected = _signature(single.search(query, k=K, use_cache=False))
        with ShardedSearchEngine(db, n_shards=4) as sharded:
            got = sharded.search(query, k=K, use_cache=False)
            assert _signature(got) == expected


def test_pruning_engages_on_biblio():
    db = generate_bibliographic_db(
        n_authors=30, n_conferences=4, n_papers=60, seed=7
    )
    with ShardedSearchEngine(db, n_shards=4) as sharded:
        sharded.search("database keyword search", k=K, use_cache=False)
        assert sharded.metrics.snapshot()["shard.pruned"] > 0


def main(argv=None) -> int:
    import argparse
    from datetime import datetime, timezone

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_sharding.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller datasets and a relaxed speedup gate (CI)",
    )
    args = parser.parse_args(argv)

    report = run_sharding_benchmark(smoke=args.smoke)
    report["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    report["python"] = sys.version.split()[0]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    acceptance = report["acceptance"]
    print(f"wrote {args.out}")
    for dataset in report["datasets"]:
        curve = " ".join(
            f"{row['shards']}sh={row['speedup']}x" for row in dataset["curve"]
        )
        print(
            f"{dataset['dataset']}: single={dataset['single_cold_ms']}ms "
            f"{curve} divergences={dataset['divergences']}"
        )
    print(
        f"speedup at 4 shards (biblio): "
        f"{acceptance['speedup_4_shards_biblio']}x "
        f"(min {acceptance['speedup_min']}x), pruned fraction "
        f"{acceptance['pruned_fraction_4_shards']}"
    )
    print(f"acceptance pass: {acceptance['pass']}")
    return 0 if acceptance["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
